"""Content-addressed on-disk result cache for corpus analyses.

A cache entry is keyed by the SHA-256 of everything that determines the
analysis outcome:

* the task kind (``table1``, ``figure5``, ...),
* the app's *source text* (the injected variant for Table 2), so editing
  a corpus app re-analyzes exactly that app,
* the :class:`repro.core.AnalysisConfig` fingerprint plus any
  task-specific parameters (``validate``, ``random_attempts``),
* the ``repro`` package version and a cache schema version, so analyzer
  changes shipped with a release never resurface stale results.

Entries are JSON files under ``<root>/<key[:2]>/<key>.json`` (two-level
fan-out keeps directories small on big corpora).  Reads tolerate missing
or corrupt files -- both count as a miss -- and writes go through a
same-directory temp file + ``os.replace`` so concurrent runs never
observe a half-written entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from .. import __version__

#: bump when the payload layout changes without a package version bump
#: (2: entries became ``{"data": ..., "obs": ...}`` envelopes carrying the
#: per-app metrics snapshot alongside the task payload; 3: occurrences
#: carry provenance -- filter witnesses, lineage chains, alias witnesses
#: -- and every stored envelope is stamped with its schema so stale
#: entries read back as misses instead of half-empty explanations;
#: 4: snapshots gained hotspot attribution metrics and optional
#: ``mem.*.peak_kb`` gauges, which must replay on hits)
CACHE_SCHEMA = 4


def default_cache_dir() -> Path:
    """``$NADROID_CACHE_DIR`` when set, else ``~/.cache/nadroid``."""
    env = os.environ.get("NADROID_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "nadroid"


def cache_key(kind: str, source: str, fingerprint: Dict[str, Any]) -> str:
    """Content hash identifying one (task, app source, config) analysis."""
    payload = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "kind": kind,
        "source_sha": hashlib.sha256(source.encode("utf-8")).hexdigest(),
        "fingerprint": fingerprint,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed JSON results, with hit counters."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: entries quarantined as ``<key>.json.corrupt`` (undecodable JSON)
        self.corrupt = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Rename an undecodable entry to ``<key>.json.corrupt``.

        Without this a truncated write (power loss, full disk) would
        silently re-miss on every run forever; quarantined files keep
        the evidence around for inspection and are swept by
        ``repro cache prune``.
        """
        try:
            os.replace(path, path.with_suffix(".json.corrupt"))
        except OSError:
            return
        self.corrupt += 1

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            # The file exists but is not JSON: quarantine, then miss.
            self._quarantine(path)
            self.misses += 1
            return None
        # Stale-schema hygiene: an entry written by an older payload
        # layout (e.g. schema 2, before provenance witnesses) replays as
        # a miss and gets transparently re-analyzed, never an error.
        # Entries normally differ by key too (the schema participates in
        # the hash), but a shared cache dir may hold hand-migrated or
        # corrupted entries at the new key.
        if payload.get("schema") != CACHE_SCHEMA:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def prune(self, everything: bool = False) -> int:
        """Delete quarantined ``.json.corrupt`` files and orphaned
        ``.tmp`` spool files (a writer killed mid-store leaves its temp
        sibling behind; harmless -- lookups never see it -- but a
        daemon-lifetime cache would accumulate them forever); with
        ``everything``, delete regular entries too.  Returns the number
        of files removed."""
        patterns = ["*/*.json.corrupt", "*/*.tmp"]
        if everything:
            patterns.append("*/*.json")
        removed = 0
        for pattern in patterns:
            for path in sorted(self.root.glob(pattern)):
                try:
                    path.unlink()
                except OSError:
                    continue
                removed += 1
        return removed

    def store(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically publish one entry.

        The payload is spooled to a same-directory ``.tmp`` sibling,
        fsync'd, and ``os.replace``'d into place, so a writer killed at
        *any* instant (timeout watchdog, ``kill`` fault action, SIGINT
        on a daemon) can never leave a torn ``<key>.json`` behind --
        readers see either the old entry or the complete new one.
        ``tests/resilience/test_cache_atomic.py`` kills a writer
        mid-store to pin this.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        stamped = {"schema": CACHE_SCHEMA, **payload}
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(stamped, handle, separators=(",", ":"))
                handle.flush()
                # without the fsync a rename can outlive its data on a
                # power loss, materializing exactly the torn entry the
                # tmp+replace dance exists to prevent
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
