"""Serializable views of analysis results (the runner's wire format).

The parallel runner executes :func:`repro.harness.table1.build_row` (and
its figure/table siblings) in worker processes and persists the outcome in
the on-disk result cache, so everything the harness consumes downstream
must round-trip through plain JSON-compatible dicts.  This module provides
that layer:

* ``warning_to_dict`` / ``warning_from_dict`` -- a :class:`UafWarning`
  with all occurrences and their filter verdicts,
* :class:`ResultData` -- the serializable stand-in for
  :class:`repro.core.AnalysisResult` (same Table-1-style accessors, minus
  the program/points-to objects which never cross process boundaries),
* ``row_to_dict`` / ``row_from_dict`` -- a full Table 1 row,
* ``config_fingerprint`` -- the canonical dict of an
  :class:`repro.core.AnalysisConfig` used in cache keys.

Warnings are sorted by a stable, content-based key on serialization so
parallel and serial runs produce byte-identical payloads regardless of
completion order.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..core import AnalysisConfig, AnalysisResult
from ..filters.pipeline import FilterReport
from ..ir import FieldRef
from ..race.events import AccessEvent
from ..race.warnings import Occurrence, PAIR_TYPES, UafWarning, Witness


def warning_sort_key(warning: UafWarning):
    """Stable content-based ordering, independent of discovery order."""
    return (
        warning.fieldref.class_name,
        warning.fieldref.field_name,
        warning.use_method,
        warning.free_method,
        warning.use_uid,
        warning.free_uid,
    )


def _event_to_dict(event: AccessEvent) -> Dict[str, Any]:
    return {
        "node_id": event.node_id,
        "method_qname": event.method_qname,
        "uid": event.uid,
        "fieldref": [event.fieldref.class_name, event.fieldref.field_name],
        "kind": event.kind,
        "is_static": event.is_static,
        "base_local": event.base_local,
        "line": event.line,
    }


def _event_from_dict(data: Dict[str, Any]) -> AccessEvent:
    return AccessEvent(
        node_id=data["node_id"],
        method_qname=data["method_qname"],
        uid=data["uid"],
        fieldref=FieldRef(*data["fieldref"]),
        kind=data["kind"],
        is_static=data["is_static"],
        base_local=data["base_local"],
        line=data["line"],
    )


def _occurrence_to_dict(occ: Occurrence) -> Dict[str, Any]:
    return {
        "use": _event_to_dict(occ.use),
        "free": _event_to_dict(occ.free),
        "pair_type": occ.pair_type,
        "pruned_by": occ.pruned_by,
        "downgraded_by": occ.downgraded_by,
        "witness": occ.witness.to_dict() if occ.witness else None,
        "use_lineage": list(occ.use_lineage),
        "free_lineage": list(occ.free_lineage),
        "alias": occ.alias.to_dict() if occ.alias else None,
    }


def _occurrence_from_dict(data: Dict[str, Any]) -> Occurrence:
    return Occurrence(
        use=_event_from_dict(data["use"]),
        free=_event_from_dict(data["free"]),
        pair_type=data["pair_type"],
        pruned_by=data["pruned_by"],
        downgraded_by=data["downgraded_by"],
        witness=Witness.from_dict(data.get("witness")),
        use_lineage=list(data.get("use_lineage", ())),
        free_lineage=list(data.get("free_lineage", ())),
        alias=Witness.from_dict(data.get("alias")),
    )


def warning_to_dict(warning: UafWarning) -> Dict[str, Any]:
    return {
        "fieldref": [warning.fieldref.class_name, warning.fieldref.field_name],
        "use_uid": warning.use_uid,
        "free_uid": warning.free_uid,
        "use_method": warning.use_method,
        "free_method": warning.free_method,
        "occurrences": [_occurrence_to_dict(o) for o in warning.occurrences],
    }


def warning_from_dict(data: Dict[str, Any]) -> UafWarning:
    return UafWarning(
        fieldref=FieldRef(*data["fieldref"]),
        use_uid=data["use_uid"],
        free_uid=data["free_uid"],
        use_method=data["use_method"],
        free_method=data["free_method"],
        occurrences=[_occurrence_from_dict(o) for o in data["occurrences"]],
    )


def _report_to_dict(report: FilterReport) -> Dict[str, Any]:
    out = {
        "potential": report.potential,
        "after_sound": report.after_sound,
        "after_unsound": report.after_unsound,
        "sound_individual": dict(report.sound_individual),
        "unsound_individual": dict(report.unsound_individual),
    }
    # Emitted only when a filter actually degraded, so fault-free
    # payloads stay byte-identical to earlier releases.
    if report.degraded:
        out["degraded"] = [dict(entry) for entry in report.degraded]
    return out


def _report_from_dict(data: Dict[str, Any]) -> FilterReport:
    return FilterReport(
        potential=data["potential"],
        after_sound=data["after_sound"],
        after_unsound=data["after_unsound"],
        sound_individual=dict(data["sound_individual"]),
        unsound_individual=dict(data["unsound_individual"]),
        degraded=[dict(entry) for entry in data.get("degraded", ())],
    )


@dataclass
class ResultData:
    """Serializable stand-in for :class:`repro.core.AnalysisResult`.

    Carries the warnings (with filter verdicts), the filter report, stage
    timings and the EC/PC/T model sizes -- everything the harness renderers
    and the CSV export consume.  The heavyweight program/points-to/lockset
    objects stay in the worker that produced them.
    """

    warnings: List[UafWarning] = field(default_factory=list)
    report: FilterReport = field(
        default_factory=lambda: FilterReport(0, 0, 0)
    )
    timings: Dict[str, float] = field(default_factory=dict)
    model_counts: Dict[str, int] = field(default_factory=dict)

    # -- AnalysisResult-compatible accessors ---------------------------------

    @property
    def potential(self) -> List[UafWarning]:
        return self.warnings

    def after_sound(self) -> List[UafWarning]:
        return [w for w in self.warnings if w.survives_sound]

    def remaining(self) -> List[UafWarning]:
        return [w for w in self.warnings if w.survives_all]

    def by_pair_type(self) -> Dict[str, int]:
        counts = {t: 0 for t in PAIR_TYPES}
        for warning in self.remaining():
            counts[warning.pair_type()] += 1
        return counts

    def counts(self) -> Dict[str, int]:
        return {
            **self.model_counts,
            "potential": self.report.potential,
            "after_sound": self.report.after_sound,
            "after_unsound": self.report.after_unsound,
        }


def result_to_data(result: AnalysisResult) -> ResultData:
    """Project a full in-process result onto its serializable view."""
    return ResultData(
        warnings=sorted(result.warnings, key=warning_sort_key),
        report=result.report,
        timings=dict(result.timings),
        model_counts=result.program.forest.counts(),
    )


def result_data_to_dict(data: ResultData) -> Dict[str, Any]:
    return {
        "warnings": [warning_to_dict(w) for w in data.warnings],
        "report": _report_to_dict(data.report),
        "timings": dict(data.timings),
        "model_counts": dict(data.model_counts),
    }


def result_data_from_dict(payload: Dict[str, Any]) -> ResultData:
    return ResultData(
        warnings=[warning_from_dict(w) for w in payload["warnings"]],
        report=_report_from_dict(payload["report"]),
        timings=dict(payload["timings"]),
        model_counts=dict(payload["model_counts"]),
    )


def row_to_dict(row) -> Dict[str, Any]:
    """Serialize a :class:`repro.harness.table1.Table1Row`."""
    result = row.result
    if isinstance(result, AnalysisResult):
        result = result_to_data(result)
    return {
        "app": row.app.name,
        "counts": dict(row.counts),
        "pair_types": dict(row.pair_types),
        "true_harmful": row.true_harmful,
        "confirmed_fields": list(row.confirmed_fields),
        "fp_breakdown": dict(row.fp_breakdown),
        "result": result_data_to_dict(result),
    }


def row_from_dict(payload: Dict[str, Any]):
    from ..corpus import app
    from ..harness.table1 import Table1Row

    return Table1Row(
        app=app(payload["app"]),
        result=result_data_from_dict(payload["result"]),
        counts=dict(payload["counts"]),
        pair_types=dict(payload["pair_types"]),
        true_harmful=payload["true_harmful"],
        confirmed_fields=list(payload["confirmed_fields"]),
        fp_breakdown=dict(payload["fp_breakdown"]),
    )


def config_fingerprint(config: Optional[AnalysisConfig]) -> Dict[str, Any]:
    """Canonical dict of an analysis configuration (``None`` = defaults).

    Every knob participates, so any config change -- ``k``, a detector
    option, a filter option -- invalidates cached results.
    """
    return asdict(config if config is not None else AnalysisConfig())
