"""Parallel cached corpus-analysis subsystem.

``CorpusRunner`` fans per-app analyses out over worker processes
(``--jobs N`` on the CLI) behind a content-addressed on-disk result cache
(``--cache-dir`` / ``--no-cache``), with a determinism guarantee: parallel
output is byte-identical to serial output.
"""

from .cache import (
    cache_key,
    CACHE_SCHEMA,
    default_cache_dir,
    ResultCache,
)
from .runner import (
    CorpusRunner,
    execute_app_task,
    execute_app_task_observed,
    RunMetrics,
    RunStats,
    TASK_KINDS,
)
from .serialize import (
    config_fingerprint,
    result_data_from_dict,
    result_data_to_dict,
    result_to_data,
    ResultData,
    row_from_dict,
    row_to_dict,
    warning_from_dict,
    warning_sort_key,
    warning_to_dict,
)

__all__ = [
    "cache_key", "CACHE_SCHEMA", "config_fingerprint", "CorpusRunner",
    "default_cache_dir", "execute_app_task", "execute_app_task_observed",
    "result_data_from_dict", "result_data_to_dict", "result_to_data",
    "ResultCache", "ResultData", "row_from_dict", "row_to_dict",
    "RunMetrics", "RunStats", "TASK_KINDS", "warning_from_dict",
    "warning_sort_key", "warning_to_dict",
]
