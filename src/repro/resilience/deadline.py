"""Cooperative per-app deadlines for the in-process execution path.

Worker processes are killed by the parent's watchdog when they overrun
``--timeout`` (see :mod:`repro.resilience.pool`); the in-process path
(``--jobs 1``, or a single pending app) has no process to kill, so it
checks a deadline cooperatively at pipeline stage boundaries instead.
:func:`repro.resilience.checkpoint` calls :func:`check_deadline`, which
raises :class:`~repro.resilience.errors.CooperativeTimeout` once the
budget is spent; the runner classifies that into the same canonical
:class:`~repro.resilience.errors.TimeoutFault` the watchdog produces.

The granularity is deliberately coarse (stage boundaries, plus the
fault-injection hang loop): a stage stuck in a tight loop will only be
caught by the watchdog, which is why ``--jobs 2`` is the recommended
floor when analyzing untrusted inputs (see docs/robustness.md).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from .errors import CooperativeTimeout


class Deadline:
    """A monotonic-clock budget of ``seconds``, checked cooperatively."""

    def __init__(self, seconds: float) -> None:
        self.seconds = float(seconds)
        self.expires_at = time.monotonic() + self.seconds

    def remaining(self) -> float:
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self) -> None:
        if self.expired:
            raise CooperativeTimeout(self.seconds)


_DEADLINE: ContextVar[Optional[Deadline]] = ContextVar(
    "nadroid-deadline", default=None
)


def current_deadline() -> Optional[Deadline]:
    return _DEADLINE.get()


def check_deadline() -> None:
    """Raise :class:`CooperativeTimeout` if the active deadline passed."""
    deadline = _DEADLINE.get()
    if deadline is not None:
        deadline.check()


@contextmanager
def deadline_scope(seconds: Optional[float]) -> Iterator[Optional[Deadline]]:
    """Install a cooperative deadline for the enclosed task (or nothing
    when ``seconds`` is ``None``)."""
    if seconds is None:
        yield None
        return
    deadline = Deadline(seconds)
    token = _DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _DEADLINE.reset(token)
