"""Typed fault taxonomy for fault-tolerant corpus runs.

One bad app must cost exactly one result, never the whole run.  Every
failure mode the runner can observe is normalized into a :class:`Fault`
-- a small, JSON-safe record ``{kind, app, stage, message,
traceback_digest}`` that rides in the runner's error envelopes, the
report JSON (per-app ``fault`` entries) and SARIF tool-execution
notifications.

Determinism contract: the same failure produces a byte-identical fault
record on the in-process path (``--jobs 1``) and the worker-process path
(``--jobs N``).  Canonical constructors (:func:`timeout_fault`,
:func:`worker_lost_fault`) therefore never embed anything
schedule-dependent (pids, exit codes, wall-clock), and
``traceback_digest`` hashes only the exception's type and message --
the frames above the analysis entry point differ between the two paths.

The taxonomy also encodes the retry policy: only *transient* faults
(a worker process lost to an OOM kill or hard crash) are ever
re-submitted; deterministic faults (parse errors, analysis crashes,
timeouts) would fail identically and are recorded on first occurrence.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Type

from ..datalog.errors import DatalogError
from ..lang.errors import SourceError

try:  # pragma: no cover - the pool never raises this itself
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - ancient pythons
    class BrokenProcessPool(Exception):
        """Placeholder when concurrent.futures.process is unavailable."""


# -- exceptions the resilience layer itself raises ---------------------------


class CooperativeTimeout(Exception):
    """Raised at a stage boundary when the cooperative deadline passed."""

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds
        super().__init__(f"per-app deadline of {seconds:g}s exceeded")


class SimulatedWorkerLoss(Exception):
    """The in-process stand-in for a worker death (``kill`` injection).

    ``os._exit`` in the main process would take the whole run down, so on
    the ``--jobs 1`` path an injected kill raises this instead; the
    runner classifies it exactly like a real worker loss (transient,
    retried).
    """


class InjectedFaultError(RuntimeError):
    """A deterministic crash planted by the fault-injection harness."""


class FaultError(RuntimeError):
    """Fail-fast surface: one app's fault aborted the run.

    The message is the one-line actionable form the CLI prints -- it
    names the app that was running (the satellite fix for the formerly
    opaque ``BrokenProcessPool`` traceback).
    """

    def __init__(self, fault: "Fault") -> None:
        self.fault = fault
        super().__init__(
            f"analysis of app '{fault.app}' failed "
            f"[{fault.kind}, stage {fault.stage}]: {fault.message} "
            f"(rerun with --keep-going to complete the remaining apps)"
        )


# -- the fault record --------------------------------------------------------


def fault_digest(kind: str, app: str, message: str) -> str:
    """Short stable digest identifying one fault's cause.

    Hashes only path-independent material (never traceback frames), so
    serial and parallel runs of the same failure agree byte-for-byte.
    """
    payload = "\x1f".join((kind, app, message))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class Fault:
    """One app-level failure, normalized and JSON-safe."""

    app: str
    stage: str
    message: str
    traceback_digest: str = ""

    #: taxonomy tag; subclasses override
    kind = "fault"
    #: retried under ``--max-retries``?  Only worker loss qualifies.
    transient = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "app": self.app,
            "stage": self.stage,
            "message": self.message,
            "traceback_digest": self.traceback_digest,
        }

    def describe(self) -> str:
        """One stderr line: ``app 'x': timeout at task: ...``."""
        return f"app '{self.app}': {self.kind} at {self.stage}: {self.message}"


class ParseFault(Fault):
    """MiniDroid source failed to lex/parse/lower (deterministic)."""

    kind = "parse"


class AnalysisFault(Fault):
    """The analysis pipeline raised (deterministic for a given input)."""

    kind = "analysis"


class TimeoutFault(Fault):
    """The per-app deadline expired (watchdog kill or cooperative)."""

    kind = "timeout"


class WorkerLostFault(Fault):
    """The worker process died without reporting (OOM kill, hard crash)."""

    kind = "worker-lost"
    transient = True


class FilterFault(Fault):
    """A filter crashed and was skipped (the analysis itself survived)."""

    kind = "filter"


FAULT_KINDS: Dict[str, Type[Fault]] = {
    cls.kind: cls
    for cls in (ParseFault, AnalysisFault, TimeoutFault, WorkerLostFault,
                FilterFault)
}


def fault_from_dict(payload: Dict[str, Any]) -> Fault:
    cls = FAULT_KINDS.get(payload.get("kind", ""), AnalysisFault)
    return cls(
        app=payload.get("app", ""),
        stage=payload.get("stage", ""),
        message=payload.get("message", ""),
        traceback_digest=payload.get("traceback_digest", ""),
    )


# -- canonical constructors --------------------------------------------------


def timeout_fault(app: str, seconds: Optional[float]) -> TimeoutFault:
    """The canonical deadline fault -- identical whether the watchdog
    killed a worker or the cooperative check raised in-process, so fault
    entries stay byte-identical across ``--jobs`` settings."""
    message = f"exceeded the per-app timeout of {seconds:g}s" \
        if seconds is not None else "exceeded the per-app timeout"
    return TimeoutFault(
        app=app, stage="task", message=message,
        traceback_digest=fault_digest("timeout", app, message),
    )


def worker_lost_fault(app: str) -> WorkerLostFault:
    """The canonical worker-death fault, naming the app that was running
    (instead of the opaque ``BrokenProcessPool`` crash it replaces)."""
    message = (f"worker process died while analyzing '{app}' "
               f"(possible OOM kill or hard crash)")
    return WorkerLostFault(
        app=app, stage="task", message=message,
        traceback_digest=fault_digest("worker-lost", app, message),
    )


def fault_from_exception(exc: BaseException, app: str,
                         stage: str = "task") -> Fault:
    """Classify an exception raised while analyzing ``app``.

    The mapping is the retry policy: :class:`WorkerLostFault` (and only
    it) comes back ``transient``.
    """
    if isinstance(exc, CooperativeTimeout):
        return timeout_fault(app, exc.seconds)
    if isinstance(exc, (SimulatedWorkerLoss, BrokenProcessPool)):
        return worker_lost_fault(app)
    if isinstance(exc, SourceError):
        cls: Type[Fault] = ParseFault
        message = str(exc)
    elif isinstance(exc, DatalogError):
        # engine-level rejections (mixed-type builtin comparison, an
        # unstratifiable user extension) are deterministic analysis
        # faults, never crashes and never retried
        cls = AnalysisFault
        message = f"{type(exc).__name__}: {exc}"
    elif isinstance(exc, RecursionError):
        cls = AnalysisFault
        message = f"RecursionError: {exc}"
    else:
        cls = AnalysisFault
        message = f"{type(exc).__name__}: {exc}"
    return cls(
        app=app, stage=stage, message=message,
        traceback_digest=fault_digest(cls.kind, app, message),
    )
