"""Deterministic fault injection: make a named app/stage raise, hang or die.

Every fault-tolerance behaviour in this repo -- error envelopes, the
watchdog kill, transient retries, graceful filter degradation -- is
tested by *planting* the failure rather than hoping for one.  A
:class:`FaultPlan` names which (app, stage) pairs misbehave and how:

``{"faults": [{"app": "todolist", "stage": "detection",
               "action": "raise"}],
   "state_dir": null, "hang_seconds": 3600.0}``

Actions:

* ``raise``       -- raise :class:`InjectedFaultError` (a deterministic
  analysis fault; never retried),
* ``parse-error`` -- raise a MiniDroid :class:`ParseError` (classifies
  as a :class:`ParseFault`; never retried),
* ``hang``        -- block until the watchdog kills the worker, or --
  in-process -- until the cooperative deadline raises,
* ``kill``        -- ``os._exit`` the worker mid-task (a real worker
  loss, retried as transient); in-process it raises
  :class:`SimulatedWorkerLoss` so the run itself survives.

``times: K`` limits a spec to the first K attempts, which is how
retry-succeeds scenarios are scripted; attempt counts persist across
worker processes via marker files in ``state_dir`` (required whenever
``times`` is set).  ``times: null`` (the default) always fires and needs
no state, which keeps cold-vs-warm-cache runs byte-identical.

Activation: programmatically via :func:`install`, or through the
``NADROID_FAULT_PLAN`` environment variable holding either inline JSON
or a path to a JSON file -- the environment form is what reaches worker
processes and CI. The active plan's digest participates in the runner's
cache fingerprint so injected results never poison the regular cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from ..lang.errors import ParseError
from .deadline import current_deadline
from .errors import InjectedFaultError, SimulatedWorkerLoss

ENV_VAR = "NADROID_FAULT_PLAN"

ACTIONS = ("raise", "parse-error", "hang", "kill")

#: set by the worker-pool child entry point; decides whether ``kill``
#: may really ``os._exit`` or must simulate the loss
_IN_WORKER = False


def mark_worker_process() -> None:
    """Flag this process as a disposable analysis worker."""
    global _IN_WORKER
    _IN_WORKER = True


@dataclass(frozen=True)
class FaultSpec:
    """One planted failure: ``app`` (or ``"*"``), ``stage``, ``action``."""

    app: str
    stage: str
    action: str
    times: Optional[int] = None

    def matches(self, app: str, stage: str) -> bool:
        return self.stage == stage and self.app in (app, "*")

    def to_dict(self) -> Dict[str, Any]:
        return {"app": self.app, "stage": self.stage,
                "action": self.action, "times": self.times}


@dataclass(frozen=True)
class FaultPlan:
    """A set of :class:`FaultSpec` entries plus shared knobs."""

    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)
    #: directory for cross-process attempt markers (required with times)
    state_dir: Optional[str] = None
    #: upper bound on a ``hang`` so an un-watched hang still terminates
    hang_seconds: float = 3600.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "faults": [spec.to_dict() for spec in self.faults],
            "state_dir": self.state_dir,
            "hang_seconds": self.hang_seconds,
        }

    def digest(self) -> str:
        """Stable content hash, mixed into runner cache fingerprints."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "FaultPlan":
        specs = []
        for entry in payload.get("faults", ()):
            action = entry.get("action", "raise")
            if action not in ACTIONS:
                raise ValueError(
                    f"unknown fault action {action!r}; expected one of "
                    f"{ACTIONS}"
                )
            specs.append(FaultSpec(
                app=entry.get("app", "*"),
                stage=entry.get("stage", "task"),
                action=action,
                times=entry.get("times"),
            ))
        plan = FaultPlan(
            faults=tuple(specs),
            state_dir=payload.get("state_dir"),
            hang_seconds=float(payload.get("hang_seconds", 3600.0)),
        )
        if plan.state_dir is None and any(
            spec.times is not None for spec in plan.faults
        ):
            raise ValueError(
                "a fault plan with 'times' limits needs a 'state_dir' for "
                "cross-process attempt markers"
            )
        return plan

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        return FaultPlan.from_dict(json.loads(text))


_INSTALLED: ContextVar[Optional[FaultPlan]] = ContextVar(
    "nadroid-fault-plan", default=None
)

#: memoized (raw env string, parsed plan)
_ENV_CACHE: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


@contextmanager
def install(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Activate ``plan`` for the enclosed block (tests, in-process runs).

    Worker processes do not inherit this scope portably -- use the
    ``NADROID_FAULT_PLAN`` environment variable for multi-process runs.
    """
    token = _INSTALLED.set(plan)
    try:
        yield
    finally:
        _INSTALLED.reset(token)


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, else the environment plan, else ``None``."""
    global _ENV_CACHE
    installed = _INSTALLED.get()
    if installed is not None:
        return installed
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    if _ENV_CACHE[0] == raw:
        return _ENV_CACHE[1]
    text = raw if raw.lstrip().startswith("{") else Path(raw).read_text()
    plan = FaultPlan.from_json(text)
    _ENV_CACHE = (raw, plan)
    return plan


# -- attempt accounting ------------------------------------------------------


def _claim_attempt(plan: FaultPlan, spec: FaultSpec) -> bool:
    """Should this spec fire now?  ``times=None`` always fires (stateless);
    otherwise the first K attempts claim marker files under
    ``state_dir`` -- atomic-create, so the count survives worker deaths
    and crosses process boundaries."""
    if spec.times is None:
        return True
    root = Path(plan.state_dir)
    root.mkdir(parents=True, exist_ok=True)
    key = f"{spec.app}.{spec.stage}.{spec.action}".replace("*", "any") \
        .replace(":", "_").replace("/", "_")
    while True:
        used = len(list(root.glob(f"{key}.attempt.*")))
        if used >= spec.times:
            return False
        try:
            (root / f"{key}.attempt.{used}").touch(exist_ok=False)
            return True
        except FileExistsError:  # lost a race; recount
            continue


# -- firing ------------------------------------------------------------------


def _hang(plan: FaultPlan) -> None:
    """Block until killed by the watchdog, interrupted by the cooperative
    deadline, or (as a backstop) ``hang_seconds`` elapse."""
    end = time.monotonic() + plan.hang_seconds
    deadline = current_deadline()
    while time.monotonic() < end:
        if deadline is not None:
            deadline.check()
        time.sleep(0.02)


def maybe_fault(app: Optional[str], stage: str) -> None:
    """Fire any planted fault matching (``app``, ``stage``).  No-op --
    one dict lookup -- when no plan is active."""
    plan = _INSTALLED.get()
    if plan is None and ENV_VAR not in os.environ:
        return
    plan = active_plan()
    if plan is None:
        return
    name = app or ""
    for spec in plan.faults:
        if not spec.matches(name, stage):
            continue
        if not _claim_attempt(plan, spec):
            continue
        if spec.action == "raise":
            raise InjectedFaultError(
                f"injected fault in app '{name}' at stage '{stage}'"
            )
        if spec.action == "parse-error":
            raise ParseError(
                f"injected parse fault at stage '{stage}'",
                1, 1, f"{name}.mjava",
            )
        if spec.action == "hang":
            _hang(plan)
            return
        if spec.action == "kill":
            if _IN_WORKER:
                os._exit(17)
            raise SimulatedWorkerLoss(
                f"injected worker loss in app '{name}' at stage '{stage}'"
            )
