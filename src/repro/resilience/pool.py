"""Fault-isolating task pool: one killable process per pending app.

The previous runner pushed every pending app through one
``ProcessPoolExecutor`` and called ``future.result()`` bare -- a single
parse error, ``RecursionError`` or OOM-killed worker
(``BrokenProcessPool``) aborted the whole run and threw away every other
app's result.  This pool restores per-app blast radius:

* each task runs in its **own** ``multiprocessing.Process`` (bounded to
  ``jobs`` concurrent), so a dying worker loses exactly one app;
* a **watchdog** enforces the per-app deadline by ``terminate()``-ing
  the overrunning process and recording a canonical
  :class:`~repro.resilience.errors.TimeoutFault`;
* **transient** faults (worker lost) are re-submitted up to
  ``max_retries`` times; deterministic faults (parse/analysis crashes,
  timeouts) never are;
* under ``keep_going`` every fault becomes an error envelope
  ``{"error": {...}}`` and the remaining apps complete; otherwise the
  first final fault aborts the run with a one-line actionable
  :class:`~repro.resilience.errors.FaultError`.

Results travel over a per-task ``Pipe``; a child that dies before
sending (kill injection, OOM, segfault) surfaces as EOF on that pipe and
classifies as :class:`WorkerLostFault`.  The serial path
(:func:`run_serial`) implements the same contract in-process, with the
cooperative deadline of :mod:`repro.resilience.deadline` standing in for
the watchdog, so ``--jobs 1`` and ``--jobs N`` produce byte-identical
fault records.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .deadline import deadline_scope
from .errors import (
    Fault,
    fault_from_dict,
    fault_from_exception,
    FaultError,
    timeout_fault,
    worker_lost_fault,
)
from .faultinject import mark_worker_process


@dataclass(frozen=True)
class FaultPolicy:
    """How a corpus run treats app-level failures.

    The default matches the historical contract (fail fast, no deadline)
    except that failures now carry a one-line actionable message instead
    of an opaque pool traceback.
    """

    #: per-app deadline in seconds (``None`` = no deadline)
    timeout: Optional[float] = None
    #: re-submissions allowed for *transient* faults (worker lost)
    max_retries: int = 1
    #: record faults and keep running (True) or abort on the first (False)
    keep_going: bool = False


#: optional pool observer: called as ``observer(event, name, payload)``
#: with events ``"start"`` (first attempt spawned, payload ``None``),
#: ``"retry"`` (transient fault re-submitted, payload the fault),
#: ``"fault"`` (final fault recorded under keep-going, payload the
#: fault) and ``"ok"`` (payload the success envelope).  Fail-fast
#: aborts raise :class:`FaultError` without a ``"fault"`` callback.
Observer = Callable[[str, str, Any], None]


def compose_observers(
    observers: Sequence[Optional[Observer]],
) -> Optional[Observer]:
    """Fan one pool-observer slot out to several sinks.

    The runner narrates each run to up to two independent consumers --
    the ordered event log and the live telemetry aggregator -- through
    the single ``observer`` parameter; this composes them.  ``None``
    entries are dropped; an empty set composes to ``None`` (no observer
    overhead at all).  Callbacks fire in input order, on the pool's
    coordinating thread.
    """
    active = [observer for observer in observers if observer is not None]
    if not active:
        return None
    if len(active) == 1:
        return active[0]

    def observer(event: str, name: str, payload: Any) -> None:
        for callback in active:
            callback(event, name, payload)

    return observer


@dataclass
class PoolOutcome:
    """What one batch of tasks actually did."""

    #: app name -> success envelope or ``{"error": fault_dict}``
    envelopes: Dict[str, Dict[str, Any]]
    #: app name -> final fault, for the apps that failed
    faults: Dict[str, Fault]
    #: transient re-submissions performed
    retries: int = 0


def _finalize(
    name: str,
    fault: Fault,
    attempt: int,
    policy: FaultPolicy,
    outcome: PoolOutcome,
    observer: Optional[Observer] = None,
) -> bool:
    """Apply the retry/keep-going policy to one fault.

    Returns True when the task should be re-submitted; raises
    :class:`FaultError` on fail-fast; otherwise records the error
    envelope.
    """
    if fault.transient and attempt <= policy.max_retries:
        outcome.retries += 1
        if observer is not None:
            observer("retry", name, fault)
        return True
    if not policy.keep_going:
        raise FaultError(fault)
    outcome.envelopes[name] = {"error": fault.to_dict()}
    outcome.faults[name] = fault
    if observer is not None:
        observer("fault", name, fault)
    return False


# -- serial path -------------------------------------------------------------


def run_serial(
    kind: str,
    names: Sequence[str],
    params: Dict[str, Any],
    policy: FaultPolicy,
    observer: Optional[Observer] = None,
) -> PoolOutcome:
    """The in-process twin of :func:`run_parallel` (``--jobs 1``)."""
    from ..runner.runner import execute_app_task_observed

    outcome = PoolOutcome(envelopes={}, faults={})
    for name in names:
        attempt = 1
        while True:
            if attempt == 1 and observer is not None:
                observer("start", name, None)
            try:
                with deadline_scope(policy.timeout):
                    envelope = execute_app_task_observed(kind, name, params)
            except Exception as exc:
                from . import current_stage

                fault = fault_from_exception(exc, name,
                                             stage=current_stage())
                if _finalize(name, fault, attempt, policy, outcome,
                             observer):
                    attempt += 1
                    continue
                break
            outcome.envelopes[name] = envelope
            if observer is not None:
                observer("ok", name, envelope)
            break
    return outcome


# -- parallel path -----------------------------------------------------------


def _child_main(conn, kind: str, name: str, params: Dict[str, Any]) -> None:
    """Worker entry point: run one task, send ``("ok", envelope)`` or a
    pre-classified ``("error", fault_dict)`` back over the pipe.

    An injected ``kill`` (or a real OOM) exits without sending anything;
    the parent reads EOF and classifies the loss itself.
    """
    mark_worker_process()
    from ..runner.runner import execute_app_task_observed

    try:
        envelope = execute_app_task_observed(kind, name, params)
        conn.send(("ok", envelope))
    except KeyboardInterrupt:
        # A terminal Ctrl-C delivers SIGINT to the whole process group,
        # so every worker gets one alongside the parent.  Exit quietly
        # -- the parent is aborting anyway and classifies the EOF as a
        # lost worker; re-raising would spray one multiprocessing
        # traceback per live worker over the user's terminal.
        pass
    except Exception as exc:
        from . import current_stage

        fault = fault_from_exception(exc, name, stage=current_stage())
        conn.send(("error", fault.to_dict()))
    finally:
        conn.close()


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class _Active:
    """Bookkeeping for one running worker."""

    __slots__ = ("proc", "conn", "deadline_at", "attempt")

    def __init__(self, proc, conn, deadline_at: Optional[float],
                 attempt: int) -> None:
        self.proc = proc
        self.conn = conn
        self.deadline_at = deadline_at
        self.attempt = attempt

    def reap(self) -> None:
        self.conn.close()
        self.proc.join()


def run_parallel(
    kind: str,
    names: Sequence[str],
    params: Dict[str, Any],
    jobs: int,
    policy: FaultPolicy,
    observer: Optional[Observer] = None,
) -> PoolOutcome:
    """Fan tasks out, one killable process each, at most ``jobs`` live."""
    ctx = _pool_context()
    outcome = PoolOutcome(envelopes={}, faults={})
    queue = deque((name, 1) for name in names)
    active: Dict[str, _Active] = {}

    def spawn(name: str, attempt: int) -> None:
        if attempt == 1 and observer is not None:
            observer("start", name, None)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main, args=(child_conn, kind, name, params)
        )
        proc.start()
        child_conn.close()
        deadline_at = (
            time.monotonic() + policy.timeout
            if policy.timeout is not None else None
        )
        active[name] = _Active(proc, parent_conn, deadline_at, attempt)

    def abort_all() -> None:
        for entry in active.values():
            entry.proc.terminate()
            entry.reap()
        active.clear()

    def settle(name: str, fault: Fault, attempt: int) -> None:
        try:
            if _finalize(name, fault, attempt, policy, outcome, observer):
                queue.append((name, attempt + 1))
        except FaultError:
            abort_all()
            raise

    try:
        while queue or active:
            while queue and len(active) < jobs:
                spawn(*queue.popleft())
            by_conn = {entry.conn: name for name, entry in active.items()}
            wait_timeout = None
            now = time.monotonic()
            deadlines = [
                entry.deadline_at for entry in active.values()
                if entry.deadline_at is not None
            ]
            if deadlines:
                wait_timeout = max(0.0, min(deadlines) - now)
            ready = connection_wait(list(by_conn), timeout=wait_timeout)
            for conn in ready:
                name = by_conn[conn]
                entry = active.pop(name)
                try:
                    status, payload = conn.recv()
                except (EOFError, OSError):
                    status, payload = "lost", None
                entry.reap()
                if status == "ok":
                    outcome.envelopes[name] = payload
                    if observer is not None:
                        observer("ok", name, payload)
                elif status == "error":
                    settle(name, fault_from_dict(payload), entry.attempt)
                else:
                    settle(name, worker_lost_fault(name), entry.attempt)
            now = time.monotonic()
            for name in list(active):
                entry = active[name]
                if entry.deadline_at is not None and now >= entry.deadline_at:
                    del active[name]
                    entry.proc.terminate()
                    entry.reap()
                    settle(name, timeout_fault(name, policy.timeout),
                           entry.attempt)
    except BaseException:
        abort_all()
        raise
    return outcome


def run_tasks(
    kind: str,
    names: Sequence[str],
    params: Dict[str, Any],
    jobs: int,
    policy: Optional[FaultPolicy] = None,
    observer: Optional[Observer] = None,
) -> PoolOutcome:
    """Execute tasks under ``policy``, parallel when ``jobs > 1`` and
    more than one task is pending."""
    policy = policy or FaultPolicy()
    if jobs > 1 and len(names) > 1:
        return run_parallel(kind, names, params, min(jobs, len(names)),
                            policy, observer)
    return run_serial(kind, names, params, policy, observer)
