"""Fault tolerance for corpus runs: isolation, deadlines, retries.

One pathological app must never cost the other N-1 their results.  This
package provides the pieces the runner threads through the pipeline:

* :mod:`~repro.resilience.errors` -- the typed fault taxonomy and the
  classification of raw exceptions into JSON-safe fault records;
* :mod:`~repro.resilience.deadline` -- cooperative per-app deadlines for
  the in-process path;
* :mod:`~repro.resilience.pool` -- the killable process-per-task pool
  with watchdog timeouts and transient-fault retries;
* :mod:`~repro.resilience.faultinject` -- the deterministic fault
  injection harness that tests all of the above.

:func:`checkpoint` is the one call analysis code makes: at each stage
boundary it gives planted faults a chance to fire and the cooperative
deadline a chance to expire.  See docs/robustness.md.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from .deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from .errors import (
    AnalysisFault,
    CooperativeTimeout,
    Fault,
    FAULT_KINDS,
    FaultError,
    FilterFault,
    InjectedFaultError,
    ParseFault,
    SimulatedWorkerLoss,
    TimeoutFault,
    WorkerLostFault,
    fault_digest,
    fault_from_dict,
    fault_from_exception,
    timeout_fault,
    worker_lost_fault,
)
from .faultinject import (
    ENV_VAR as FAULT_PLAN_ENV_VAR,
    FaultPlan,
    FaultSpec,
    active_plan,
    install,
    maybe_fault,
)
from .pool import (
    compose_observers,
    FaultPolicy,
    Observer,
    PoolOutcome,
    run_tasks,
)

_CURRENT_APP: ContextVar[Optional[str]] = ContextVar(
    "nadroid-current-app", default=None
)

#: the most recent checkpointed stage -- deliberately NOT a contextvar:
#: when a task raises, its scopes unwind before the pool classifies the
#: exception, and this residue is exactly what names the failing stage
#: in the fault record.  One task per process/thread, so a plain global
#: is race-free here.
_LAST_STAGE = "task"


def current_app() -> Optional[str]:
    """The app the enclosing task is analyzing, if any."""
    return _CURRENT_APP.get()


def current_stage() -> str:
    """The last stage boundary the current (or just-failed) task crossed."""
    return _LAST_STAGE


@contextmanager
def task_scope(app: str) -> Iterator[None]:
    """Name the app under analysis so checkpoints can match fault specs."""
    global _LAST_STAGE
    _LAST_STAGE = "task"
    token = _CURRENT_APP.set(app)
    try:
        yield
    finally:
        _CURRENT_APP.reset(token)


def checkpoint(stage: str) -> None:
    """A pipeline stage boundary: fire planted faults, check the deadline.

    Costs one contextvar read each when no plan/deadline is active.
    """
    global _LAST_STAGE
    _LAST_STAGE = stage
    maybe_fault(_CURRENT_APP.get(), stage)
    check_deadline()


__all__ = [
    "AnalysisFault",
    "CooperativeTimeout",
    "Deadline",
    "FAULT_KINDS",
    "FAULT_PLAN_ENV_VAR",
    "Fault",
    "FaultError",
    "FaultPlan",
    "FaultPolicy",
    "FaultSpec",
    "FilterFault",
    "InjectedFaultError",
    "ParseFault",
    "PoolOutcome",
    "SimulatedWorkerLoss",
    "TimeoutFault",
    "WorkerLostFault",
    "active_plan",
    "check_deadline",
    "checkpoint",
    "current_app",
    "current_deadline",
    "current_stage",
    "deadline_scope",
    "fault_digest",
    "fault_from_dict",
    "fault_from_exception",
    "install",
    "maybe_fault",
    "compose_observers",
    "Observer",
    "run_tasks",
    "task_scope",
    "timeout_fault",
    "worker_lost_fault",
]
