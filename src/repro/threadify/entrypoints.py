"""Entry-callback discovery (paper section 4.1).

Entry callbacks (ECs) are externally invoked by the Android runtime:
component lifecycle callbacks, Activity-level UI/system callbacks, and
statically-registered receiver callbacks.  Imperatively registered
listener callbacks (``setOnClickListener`` et al.) are also ECs -- the
paper models them as children of the dummy main -- but they are discovered
from registration sites by the threadifier, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..android.callbacks import (
    ACTIVITY_ENTRY_CALLBACKS,
    APPLICATION_LIFECYCLE,
    CallbackCategory,
    categorize_entry_callback,
    SERVICE_LIFECYCLE,
)
from ..android.framework import is_framework_class
from ..android.manifest import Manifest
from ..ir import Module


@dataclass(frozen=True)
class EntryCallback:
    """One discovered entry callback."""

    receiver_class: str
    method_name: str
    category: CallbackCategory
    component: str


_KIND_CALLBACKS = {
    "activity": ACTIVITY_ENTRY_CALLBACKS,
    "service": SERVICE_LIFECYCLE,
    "receiver": frozenset({"onReceive"}),
    "application": APPLICATION_LIFECYCLE,
}

_KIND_FRAMEWORK_CLASS = {
    "activity": "Activity",
    "service": "Service",
    "receiver": "BroadcastReceiver",
    "application": "Application",
}


def discover_entry_callbacks(
    module: Module, manifest: Manifest
) -> List[EntryCallback]:
    """Find every component entry callback declared by the application.

    A method qualifies when its name is in the curated callback set for
    the component kind.  The sets are curated (FlowDroid-style), so a
    UI/system callback implemented on a component counts even without an
    imperative registration site -- mirroring declarative registration in
    layout XML (paper section 4.1).
    """
    result: List[EntryCallback] = []
    for decl in manifest.components.values():
        cls = module.lookup_class(decl.name)
        if cls is None:
            continue
        names = _KIND_CALLBACKS[decl.kind]
        seen = set()
        # Walk the app-level hierarchy: C and its app superclasses all
        # contribute callbacks that run when C's component is active.
        for owner in [decl.name, *module.superclasses(decl.name)]:
            if is_framework_class(owner):
                break
            owner_cls = module.lookup_class(owner)
            if owner_cls is None:
                continue
            for method_name in owner_cls.methods:
                if method_name in seen or method_name not in names:
                    continue
                seen.add(method_name)
                result.append(
                    EntryCallback(
                        receiver_class=decl.name,
                        method_name=method_name,
                        category=categorize_entry_callback(method_name, decl.kind),
                        component=decl.name,
                    )
                )
    return result
