"""Threadification: transform + thread-forest construction (paper section 4).

The transform mirrors what nAdroid does with Soot:

1. **Registry synthesis.**  A synthetic ``$Registry`` class gets one static
   field per callback channel (posted runnables, handlers, threads,
   AsyncTasks, service connections, receivers, and one per listener
   interface).
2. **Stub rewriting.**  Framework posting/registration methods get bodies
   that store their callback object into the matching registry field, so
   callback receivers flow through the heap exactly once.
3. **Dummy main.**  A synthetic ``DummyMain.main`` allocates every
   component, invokes its entry callbacks, and drains every registry field
   by invoking the registered callbacks -- giving downstream analyses a
   single entry point (like FlowDroid's dummy main), with flow-insensitive
   points-to closing the loop for callbacks registered inside callbacks.
4. **Forest construction.**  Entry callbacks become children of the dummy
   main; posted callbacks and threads become children of their
   poster/spawner, discovered by a region fixpoint over the CHA call graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..android.api import ApiKind, ApiSpec, lookup_api
from ..android.callbacks import (
    CallbackCategory,
    FRAGMENT_LIFECYCLE,
    PC_CATEGORY_BY_CALLBACK,
)
from ..android.framework import is_framework_class
from ..android.manifest import infer_manifest, Manifest
from ..ir import (
    BOOLEAN,
    ClassDef,
    ClassType,
    Const,
    ControlFlowGraph,
    Field,
    FieldRef,
    Invoke,
    IRBuilder,
    Local,
    Method,
    MethodRef,
    Module,
    Operand,
    Type,
)
from ..analysis.callgraph import build_cha_callgraph, CallGraph, instantiated_classes
from .entrypoints import discover_entry_callbacks
from .model import ThreadForest, ThreadKind, ThreadNode
from .resolve import resolve_local_classes, resolve_thread_tasks

REGISTRY_CLASS = "$Registry"
DUMMY_MAIN_CLASS = "DummyMain"

#: Listener interfaces that get their own registry slot.
_LISTENER_INTERFACES = (
    "OnClickListener",
    "OnLongClickListener",
    "OnTouchListener",
    "OnItemClickListener",
    "LocationListener",
    "SensorEventListener",
    "OnCompletionListener",
    "OnSharedPreferenceChangeListener",
)


@dataclass
class ApiSite:
    """One concurrency-relevant call site in application code."""

    uid: int
    method: Method
    invoke: Invoke
    spec: ApiSpec

    @property
    def qualified_caller(self) -> str:
        return self.method.qualified_name


@dataclass
class ThreadifiedProgram:
    """Result of threadification: the transformed module plus metadata."""

    module: Module
    forest: ThreadForest
    manifest: Manifest
    callgraph: CallGraph
    #: node_id -> qualified names of methods the node's thread executes
    regions: Dict[int, Set[str]] = field(default_factory=dict)
    api_sites: Dict[int, ApiSite] = field(default_factory=dict)
    synthetic_classes: Set[str] = field(default_factory=set)

    def node_of_method(self, qname: str) -> List[ThreadNode]:
        """All forest nodes whose region contains a method."""
        return [
            self.forest.node(node_id)
            for node_id, region in self.regions.items()
            if qname in region
        ]

    def is_app_class(self, name: str) -> bool:
        return (
            not is_framework_class(name)
            and name not in self.synthetic_classes
            and name in self.module.classes
        )


class Threadifier:
    """Run the threadification transform on an *unsealed* module."""

    def __init__(self, module: Module, manifest: Optional[Manifest] = None) -> None:
        if module.sealed:
            raise ValueError(
                "threadification must run on an unsealed module "
                "(compile with seal=False)"
            )
        self.module = module
        self.manifest = manifest
        self.synthetic: Set[str] = set()
        #: ApiKinds that actually occur at application call sites; registry
        #: channels for the newer APIs (fragments, ordered broadcasts) are
        #: synthesized only on demand so apps that never touch them produce
        #: byte-identical facts and forests to earlier versions.
        self._present_kinds: Set[ApiKind] = set()

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------

    def run(self) -> ThreadifiedProgram:
        self._present_kinds = self._scan_api_kinds()
        if self.manifest is None:
            self.manifest = infer_manifest(self.module)
            self._drop_dynamic_receivers(self.manifest)
        entry_callbacks = discover_entry_callbacks(self.module, self.manifest)

        self._synthesize_registry()
        self._rewrite_framework_stubs()
        self._synthesize_dummy_main(entry_callbacks)
        self.module.seal()

        rta = instantiated_classes(self.module)
        callgraph = build_cha_callgraph(self.module, rta)
        program = ThreadifiedProgram(
            module=self.module,
            forest=ThreadForest(),
            manifest=self.manifest,
            callgraph=callgraph,
            synthetic_classes=set(self.synthetic),
        )
        self._collect_api_sites(program)
        self._build_forest(program, entry_callbacks, rta)
        return program

    # ------------------------------------------------------------------
    # Manifest adjustment
    # ------------------------------------------------------------------

    def _scan_api_kinds(self) -> Set[ApiKind]:
        """ApiKinds referenced by any application call site."""
        kinds: Set[ApiKind] = set()
        for method in self.module.methods():
            if is_framework_class(method.class_name):
                continue
            if method.class_name in self.synthetic:
                continue
            for instr in method.instructions():
                if not isinstance(instr, Invoke):
                    continue
                spec = lookup_api(
                    self.module, instr.methodref.class_name,
                    instr.methodref.method_name,
                )
                if spec is not None:
                    kinds.add(spec.kind)
        return kinds

    def _drop_dynamic_receivers(self, manifest: Manifest) -> None:
        """Inferred manifests list every receiver subclass; receivers that
        are registered dynamically -- or passed to ``sendOrderedBroadcast``
        as the result receiver -- are posted callbacks, not components."""
        dynamic: Set[str] = set()
        rta = instantiated_classes(self.module)
        for method in self.module.methods():
            if is_framework_class(method.class_name):
                continue
            for instr in method.instructions():
                if not isinstance(instr, Invoke):
                    continue
                spec = lookup_api(
                    self.module, instr.methodref.class_name,
                    instr.methodref.method_name,
                )
                if spec is None or spec.kind not in (
                    ApiKind.REGISTER_RECEIVER, ApiKind.SEND_ORDERED_BROADCAST,
                ):
                    continue
                arg = instr.args[spec.callback_arg]
                if isinstance(arg, Local):
                    dynamic |= resolve_local_classes(
                        self.module, method, arg, rta,
                    )
        for name in dynamic:
            decl = manifest.components.get(name)
            if decl is not None and decl.kind == "receiver":
                del manifest.components[name]

    # ------------------------------------------------------------------
    # Synthesis
    # ------------------------------------------------------------------

    def _registry_fields(self) -> List[Tuple[str, str]]:
        fields = [
            ("$runnables", "Runnable"),
            ("$tasks", "Runnable"),
            ("$threads", "Thread"),
            ("$handlers", "Handler"),
            ("$asynctasks", "AsyncTask"),
            ("$connections", "ServiceConnection"),
            ("$receivers", "BroadcastReceiver"),
        ]
        fields.extend(
            (f"$listener_{iface}", iface) for iface in _LISTENER_INTERFACES
        )
        if ApiKind.REGISTER_FRAGMENT in self._present_kinds:
            fields.append(("$fragments", "Fragment"))
        if ApiKind.SEND_ORDERED_BROADCAST in self._present_kinds:
            fields.append(("$ordered_receivers", "BroadcastReceiver"))
        return fields

    def _synthesize_registry(self) -> None:
        registry = ClassDef(REGISTRY_CLASS, super_name="Object")
        for name, type_name in self._registry_fields():
            registry.add_field(
                Field(name, ClassType(type_name), is_static=True)
            )
        self.module.add_class(registry)
        self.synthetic.add(REGISTRY_CLASS)

    def _rewrite_stub(self, class_name: str, method_name: str, build) -> None:
        method = self.module.lookup_method(class_name, method_name)
        assert method is not None, f"missing framework stub {class_name}.{method_name}"
        method.cfg = ControlFlowGraph()
        builder = IRBuilder(method)
        build(builder, method)
        builder.finish()

    def _store_registry(self, field_name: str):
        def build(builder: IRBuilder, method: Method) -> None:
            ref = FieldRef(REGISTRY_CLASS, field_name)
            builder.put_static(ref, Local(method.params[0].name))
        return build

    def _store_registry_this(self, field_name: str):
        def build(builder: IRBuilder, method: Method) -> None:
            builder.put_static(FieldRef(REGISTRY_CLASS, field_name), Local("this"))
        return build

    def _rewrite_framework_stubs(self) -> None:
        reg = self._rewrite_stub
        reg("Handler", "post", self._store_registry("$runnables"))
        reg("Handler", "postDelayed", self._store_registry("$runnables"))
        reg("View", "post", self._store_registry("$runnables"))
        reg("View", "postDelayed", self._store_registry("$runnables"))
        reg("Activity", "runOnUiThread", self._store_registry("$runnables"))
        reg("Handler", "sendMessage", self._store_registry_this("$handlers"))
        reg("Handler", "sendMessageDelayed", self._store_registry_this("$handlers"))
        reg("Handler", "sendEmptyMessage", self._store_registry_this("$handlers"))
        reg("Thread", "start", self._store_registry_this("$threads"))
        reg("ExecutorService", "execute", self._store_registry("$tasks"))
        reg("ExecutorService", "submit", self._store_registry("$tasks"))
        reg("Timer", "schedule", self._store_registry("$tasks"))
        reg("AsyncTask", "execute", self._store_registry_this("$asynctasks"))
        reg("AsyncTask", "publishProgress", self._store_registry_this("$asynctasks"))
        reg("Context", "registerReceiver", self._store_registry("$receivers"))

        def bind_service(builder: IRBuilder, method: Method) -> None:
            builder.put_static(
                FieldRef(REGISTRY_CLASS, "$connections"),
                Local(method.params[1].name),
            )
        reg("Context", "bindService", bind_service)

        if ApiKind.REGISTER_FRAGMENT in self._present_kinds:
            def commit_fragment(builder: IRBuilder, method: Method) -> None:
                builder.put_static(
                    FieldRef(REGISTRY_CLASS, "$fragments"),
                    Local(method.params[1].name),
                )
                # Preserve the chaining return value of the original stub.
                builder.ret(builder.new("FragmentTransaction"))
            reg("FragmentTransaction", "add", commit_fragment)
            reg("FragmentTransaction", "replace", commit_fragment)

        if ApiKind.SEND_ORDERED_BROADCAST in self._present_kinds:
            def ordered_broadcast(builder: IRBuilder, method: Method) -> None:
                builder.put_static(
                    FieldRef(REGISTRY_CLASS, "$ordered_receivers"),
                    Local(method.params[1].name),
                )
            reg("Context", "sendOrderedBroadcast", ordered_broadcast)

        def thread_init(builder: IRBuilder, method: Method) -> None:
            builder.put_field(
                Local("this"), FieldRef("Thread", "$task"),
                Local(method.params[0].name),
            )
        reg("Thread", "<init>", thread_init)

        listener_registrations = [
            ("View", "setOnClickListener", "OnClickListener"),
            ("View", "setOnLongClickListener", "OnLongClickListener"),
            ("View", "setOnTouchListener", "OnTouchListener"),
            ("ListView", "setOnItemClickListener", "OnItemClickListener"),
            ("MediaPlayer", "setOnCompletionListener", "OnCompletionListener"),
            ("SharedPreferences", "registerOnSharedPreferenceChangeListener",
             "OnSharedPreferenceChangeListener"),
        ]
        for class_name, method_name, iface in listener_registrations:
            reg(class_name, method_name, self._store_registry(f"$listener_{iface}"))

        def location_updates(builder: IRBuilder, method: Method) -> None:
            builder.put_static(
                FieldRef(REGISTRY_CLASS, "$listener_LocationListener"),
                Local(method.params[3].name),
            )
        reg("LocationManager", "requestLocationUpdates", location_updates)

        def sensor_listener(builder: IRBuilder, method: Method) -> None:
            builder.put_static(
                FieldRef(REGISTRY_CLASS, "$listener_SensorEventListener"),
                Local(method.params[0].name),
            )
        reg("SensorManager", "registerListener", sensor_listener)

    @staticmethod
    def _default_arg(type_: Type) -> Operand:
        if type_ == BOOLEAN:
            return Const(False)
        if not type_.is_reference():
            return Const(0)
        return Const(None)

    def _invoke_callback(
        self, builder: IRBuilder, base: Local, declared_class: str, method_name: str
    ) -> None:
        resolved = self.module.resolve_method(declared_class, method_name)
        if resolved is None:
            return
        args = [self._default_arg(p.type) for p in resolved.params]
        ref = MethodRef(declared_class, method_name, resolved.arity)
        builder.invoke("virtual", base, ref, args, None)

    def _seed_framework_fields(self, builder: IRBuilder, obj: Local,
                               class_name: str) -> None:
        """Environment injection: fields of *framework* type on a component
        (``Handler handler;``, ``ExecutorService pool;``) are provided by
        the Android runtime; seed them with fresh framework objects so the
        points-to analysis can dispatch calls through them.  Application-
        class fields are never seeded -- their values must flow from real
        application code."""
        from ..android.framework import concrete_return_class

        seen: Set[str] = set()
        for owner in [class_name, *self.module.superclasses(class_name)]:
            cls = self.module.lookup_class(owner)
            if cls is None or is_framework_class(owner):
                break
            for field_obj in cls.fields.values():
                if field_obj.name in seen or field_obj.is_static:
                    continue
                seen.add(field_obj.name)
                if not field_obj.type.is_reference():
                    continue
                if not is_framework_class(field_obj.type.name):
                    continue
                concrete = concrete_return_class(field_obj.type.name)
                if concrete is None:
                    continue
                seeded = builder.new(concrete)
                builder.put_field(
                    obj, FieldRef(owner, field_obj.name), seeded
                )

    def _synthesize_dummy_main(self, entry_callbacks) -> None:
        dummy = ClassDef(DUMMY_MAIN_CLASS, super_name="Object")
        main = Method(DUMMY_MAIN_CLASS, "main", is_static=True)
        dummy.add_method(main)
        self.module.add_class(dummy)
        self.synthetic.add(DUMMY_MAIN_CLASS)
        builder = IRBuilder(main)

        # Static initializers first.
        for cls in list(self.module.classes.values()):
            if is_framework_class(cls.name) or cls.name in self.synthetic:
                continue
            if "<clinit>" in cls.methods:
                builder.invoke(
                    "static", None, MethodRef(cls.name, "<clinit>", 0), []
                )

        # Allocate each component and fire its entry callbacks.
        component_locals: Dict[str, Local] = {}
        for decl in self.manifest.components.values():
            cls = self.module.lookup_class(decl.name)
            if cls is None or cls.is_interface:
                continue
            obj = builder.new(decl.name, target=f"$cmp_{decl.name}")
            component_locals[decl.name] = obj
            ctor = self.module.resolve_method(decl.name, "<init>")
            if ctor is not None and ctor.arity == 0:
                builder.invoke(
                    "special", obj, MethodRef(ctor.class_name, "<init>", 0), []
                )
            self._seed_framework_fields(builder, obj, decl.name)
        for ec in entry_callbacks:
            base = component_locals.get(ec.receiver_class)
            if base is None:
                continue
            self._invoke_callback(builder, base, ec.receiver_class, ec.method_name)

        # Drain the registries.
        def load(field_name: str, type_name: str) -> Local:
            ref = FieldRef(REGISTRY_CLASS, field_name)
            return builder.get_static(ref, target=f"$drain_{field_name[1:]}")

        runnable = load("$runnables", "Runnable")
        self._invoke_callback(builder, runnable, "Runnable", "run")
        task = load("$tasks", "Runnable")
        self._invoke_callback(builder, task, "Runnable", "run")
        thread = load("$threads", "Thread")
        self._invoke_callback(builder, thread, "Thread", "run")
        inner = builder.get_field(thread, FieldRef("Thread", "$task"),
                                  target="$drain_thread_task")
        self._invoke_callback(builder, inner, "Runnable", "run")
        handler = load("$handlers", "Handler")
        self._invoke_callback(builder, handler, "Handler", "handleMessage")
        atask = load("$asynctasks", "AsyncTask")
        for callback in ("onPreExecute", "doInBackground",
                         "onProgressUpdate", "onPostExecute", "onCancelled"):
            self._invoke_callback(builder, atask, "AsyncTask", callback)
        conn = load("$connections", "ServiceConnection")
        self._invoke_callback(builder, conn, "ServiceConnection",
                              "onServiceConnected")
        self._invoke_callback(builder, conn, "ServiceConnection",
                              "onServiceDisconnected")
        receiver = load("$receivers", "BroadcastReceiver")
        self._invoke_callback(builder, receiver, "BroadcastReceiver", "onReceive")
        if ApiKind.REGISTER_FRAGMENT in self._present_kinds:
            fragment = load("$fragments", "Fragment")
            for callback in ("onAttach", "onCreate", "onStart", "onResume",
                             "onPause", "onStop", "onDestroy", "onDetach"):
                self._invoke_callback(builder, fragment, "Fragment", callback)
        if ApiKind.SEND_ORDERED_BROADCAST in self._present_kinds:
            ordered = load("$ordered_receivers", "BroadcastReceiver")
            self._invoke_callback(builder, ordered, "BroadcastReceiver",
                                  "onReceive")
        for iface in _LISTENER_INTERFACES:
            listener = load(f"$listener_{iface}", iface)
            iface_cls = self.module.lookup_class(iface)
            if iface_cls is None:
                continue
            for method_name in iface_cls.methods:
                self._invoke_callback(builder, listener, iface, method_name)
        builder.finish()

    # ------------------------------------------------------------------
    # Forest construction
    # ------------------------------------------------------------------

    def _collect_api_sites(self, program: ThreadifiedProgram) -> None:
        for method in self.module.methods():
            if is_framework_class(method.class_name):
                continue
            if method.class_name in self.synthetic:
                continue
            for instr in method.instructions():
                if not isinstance(instr, Invoke):
                    continue
                spec = lookup_api(
                    self.module, instr.methodref.class_name,
                    instr.methodref.method_name,
                )
                if spec is not None:
                    program.api_sites[instr.uid] = ApiSite(
                        instr.uid, method, instr, spec
                    )

    def _callback_operand(self, site: ApiSite) -> Optional[Local]:
        if site.spec.callback_arg is None:
            return site.invoke.base
        arg = site.invoke.args[site.spec.callback_arg]
        return arg if isinstance(arg, Local) else None

    def _region_skip_set(self, program: ThreadifiedProgram) -> Set[str]:
        if not hasattr(self, "_skip_cache"):
            self._skip_cache = {
                qname
                for qname in program.callgraph.methods
                if qname.split(".")[0] in self.synthetic
                or is_framework_class(qname.split(".")[0])
            }
        return self._skip_cache

    def _node_region(self, program: ThreadifiedProgram, node: ThreadNode) -> Set[str]:
        if node.kind is ThreadKind.DUMMY_MAIN:
            return set()
        entry = self.module.resolve_method(node.receiver_class, node.method_name)
        if entry is None:
            return set()
        return program.callgraph.reachable_from(
            {entry.qualified_name}, skip=self._region_skip_set(program)
        )

    def _app_implements(self, class_name: str, method_name: str) -> bool:
        """Does the class (or an app superclass) actually implement this
        callback, rather than inheriting the empty framework stub?"""
        resolved = self.module.resolve_method(class_name, method_name)
        return resolved is not None and not is_framework_class(resolved.class_name)

    def _build_forest(self, program: ThreadifiedProgram, entry_callbacks,
                      rta: Set[str]) -> None:
        forest = program.forest

        for ec in entry_callbacks:
            node = forest.add_entry_callback(
                ec.receiver_class, ec.method_name, ec.category, ec.component
            )
            program.regions[node.node_id] = self._node_region(program, node)

        # Listener registrations create ECs (children of the dummy main).
        # Callbacks already discovered through the component scan (e.g. an
        # Activity registering itself as a listener) are not duplicated.
        seen_listeners: Set[Tuple[str, str]] = {
            node.entry for node in forest.entry_callbacks()
        }
        for site in program.api_sites.values():
            if site.spec.kind is not ApiKind.REGISTER_LISTENER:
                continue
            operand = self._callback_operand(site)
            if operand is None:
                continue
            classes = resolve_local_classes(self.module, site.method, operand, rta)
            for cls_name in sorted(classes):
                for callback in site.spec.callbacks:
                    if not self._app_implements(cls_name, callback):
                        continue
                    if (cls_name, callback) in seen_listeners:
                        continue
                    seen_listeners.add((cls_name, callback))
                    node = forest.add_entry_callback(
                        cls_name, callback, CallbackCategory.UI,
                        component=self._owning_component(cls_name),
                    )
                    program.regions[node.node_id] = self._node_region(program, node)

        # Posted callbacks and threads: fixpoint over regions.
        work: List[ThreadNode] = list(forest)
        while work:
            node = work.pop()
            region = program.regions.get(node.node_id, set())
            for site in program.api_sites.values():
                if site.qualified_caller not in region:
                    continue
                for child in self._children_for_site(program, node, site, rta):
                    work.append(child)

    def _owning_component(self, class_name: str) -> Optional[str]:
        """The component whose code lexically contains a class, following
        the $outer chain of anonymous classes."""
        name = class_name
        hops = 0
        while hops < 16:
            if self.manifest is not None and name in self.manifest.components:
                return name
            base = name.split("$", 1)[0] if "$" in name else None
            if base is None or base == name:
                return None
            name = base
            hops += 1
        return None

    def _add_child(
        self,
        program: ThreadifiedProgram,
        parent: ThreadNode,
        kind: ThreadKind,
        receiver_class: str,
        method_name: str,
        site: ApiSite,
        category: Optional[CallbackCategory] = None,
        group_key: Optional[str] = None,
    ) -> Optional[ThreadNode]:
        key = (receiver_class, method_name, site.uid)
        for ancestor in [parent, *parent.ancestors()]:
            if (ancestor.receiver_class, ancestor.method_name,
                    ancestor.post_site) == key:
                return None  # cycle: a callback re-posting itself
        for child in program.forest.children(parent):
            if (child.receiver_class, child.method_name, child.post_site) == key:
                return None  # already modeled
        if kind is ThreadKind.POSTED_CALLBACK:
            node = program.forest.add_posted_callback(
                parent, receiver_class, method_name,
                category or PC_CATEGORY_BY_CALLBACK.get(
                    method_name, CallbackCategory.POSTED_RUNNABLE),
                post_site=site.uid,
                component=self._owning_component(receiver_class),
                group_key=group_key,
            )
        else:
            node = program.forest.add_native_thread(
                parent, receiver_class, method_name,
                post_site=site.uid, kind=kind, group_key=group_key,
            )
        program.regions[node.node_id] = self._node_region(program, node)
        return node

    def _children_for_site(
        self,
        program: ThreadifiedProgram,
        parent: ThreadNode,
        site: ApiSite,
        rta: Set[str],
    ) -> List[ThreadNode]:
        kind = site.spec.kind
        created: List[ThreadNode] = []
        operand = self._callback_operand(site)
        if operand is None:
            return created
        classes = resolve_local_classes(self.module, site.method, operand, rta)

        if kind in (ApiKind.POST_RUNNABLE, ApiKind.SEND_MESSAGE,
                    ApiKind.REGISTER_RECEIVER):
            for cls_name in sorted(classes):
                for callback in site.spec.callbacks:
                    if not self._app_implements(cls_name, callback):
                        continue
                    child = self._add_child(
                        program, parent, ThreadKind.POSTED_CALLBACK,
                        cls_name, callback, site,
                    )
                    if child is not None:
                        created.append(child)

        elif kind is ApiKind.SEND_ORDERED_BROADCAST:
            for cls_name in sorted(classes):
                if not self._app_implements(cls_name, "onReceive"):
                    continue
                child = self._add_child(
                    program, parent, ThreadKind.POSTED_CALLBACK,
                    cls_name, "onReceive", site,
                    category=CallbackCategory.RECEIVER_RESULT,
                )
                if child is not None:
                    created.append(child)

        elif kind is ApiKind.REGISTER_FRAGMENT:
            for cls_name in sorted(classes):
                for callback in site.spec.callbacks:
                    if callback not in FRAGMENT_LIFECYCLE:
                        continue
                    if not self._app_implements(cls_name, callback):
                        continue
                    child = self._add_child(
                        program, parent, ThreadKind.POSTED_CALLBACK,
                        cls_name, callback, site,
                        category=CallbackCategory.FRAGMENT,
                        group_key=f"frag:{cls_name}",
                    )
                    if child is not None:
                        created.append(child)

        elif kind is ApiKind.BIND_SERVICE:
            for cls_name in sorted(classes):
                for callback in site.spec.callbacks:
                    if not self._app_implements(cls_name, callback):
                        continue
                    child = self._add_child(
                        program, parent, ThreadKind.POSTED_CALLBACK,
                        cls_name, callback, site,
                        category=CallbackCategory.SERVICE_CONN,
                        group_key=f"conn:{cls_name}",
                    )
                    if child is not None:
                        created.append(child)

        elif kind is ApiKind.SPAWN_THREAD:
            for cls_name in sorted(classes):
                if cls_name == "Thread":
                    # `new Thread(r).start()`: the task's run() is the body.
                    tasks = resolve_thread_tasks(
                        self.module, site.method, operand, rta
                    )
                    for task_cls in sorted(tasks):
                        if not self._app_implements(task_cls, "run"):
                            continue
                        child = self._add_child(
                            program, parent, ThreadKind.NATIVE_THREAD,
                            task_cls, "run", site,
                        )
                        if child is not None:
                            created.append(child)
                elif self._app_implements(cls_name, "run"):
                    child = self._add_child(
                        program, parent, ThreadKind.NATIVE_THREAD,
                        cls_name, "run", site,
                    )
                    if child is not None:
                        created.append(child)

        elif kind is ApiKind.ASYNCTASK_EXECUTE:
            for cls_name in sorted(classes):
                group = f"task:{cls_name}"
                bg: Optional[ThreadNode] = None
                if self._app_implements(cls_name, "doInBackground"):
                    bg = self._add_child(
                        program, parent, ThreadKind.ASYNC_BACKGROUND,
                        cls_name, "doInBackground", site, group_key=group,
                    )
                    if bg is not None:
                        created.append(bg)
                # The looper-side callbacks are modeled as children of the
                # AsyncTask thread (paper Figure 3(e)).
                anchor = bg if bg is not None else parent
                for callback in ("onPreExecute", "onProgressUpdate",
                                 "onPostExecute", "onCancelled"):
                    if not self._app_implements(cls_name, callback):
                        continue
                    child = self._add_child(
                        program, anchor, ThreadKind.POSTED_CALLBACK,
                        cls_name, callback, site,
                        group_key=group,
                    )
                    if child is not None:
                        created.append(child)
        return created


def threadify(module: Module, manifest: Optional[Manifest] = None) -> ThreadifiedProgram:
    """One-call wrapper: run threadification on an unsealed module."""
    return Threadifier(module, manifest).run()
