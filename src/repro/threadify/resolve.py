"""Lightweight receiver-class resolution for registration/post call sites.

The threadifier needs to know *which classes'* callbacks a registration
call registers (e.g. which ``Runnable`` a ``Handler.post`` posts) before
the heavyweight points-to analysis runs.  This resolver combines an
intra-procedural def scan with RTA-filtered class-hierarchy information,
which is exactly enough for the idioms Android code (and our corpus) uses:
``new``-at-the-call-site, fields holding concrete subclasses, ``this``,
and locals copied between one another.
"""

from __future__ import annotations

from typing import Optional, Set

from ..android.framework import is_framework_class
from ..ir import (
    Assign,
    GetField,
    GetStatic,
    Invoke,
    Local,
    Method,
    Module,
    New,
    Type,
)


def concrete_implementers(
    module: Module,
    type_name: str,
    rta: Set[str],
    include_framework: bool = False,
) -> Set[str]:
    """Instantiated, non-interface subtypes of a declared type."""
    candidates = set(module.subclasses(type_name)) | {type_name}
    result: Set[str] = set()
    for name in candidates:
        cls = module.lookup_class(name)
        if cls is None or cls.is_interface:
            continue
        if not include_framework and is_framework_class(name):
            continue
        if name in rta:
            result.add(name)
    return result


def resolve_local_classes(
    module: Module,
    method: Method,
    local: Local,
    rta: Set[str],
    _depth: int = 0,
    _seen: Optional[Set[str]] = None,
) -> Set[str]:
    """Possible dynamic classes of a local within one method.

    Prefers intra-procedural allocation evidence (``new`` reaching the
    local); falls back to the declared type of the defining field, call or
    parameter, widened to its instantiated subtypes.
    """
    if _depth > 8:
        return set()
    if _seen is None:
        _seen = set()
    if local.name in _seen:
        return set()
    _seen.add(local.name)

    if local.name == "this":
        return concrete_implementers(module, method.class_name, rta) or {
            method.class_name
        }

    allocated: Set[str] = set()
    declared: Set[str] = set()
    for instr in method.instructions():
        if instr.target_local() != local.name:
            continue
        if isinstance(instr, New):
            allocated.add(instr.class_name)
        elif isinstance(instr, Assign) and isinstance(instr.source, Local):
            allocated |= resolve_local_classes(
                module, method, instr.source, rta, _depth + 1, _seen
            )
        elif isinstance(instr, (GetField, GetStatic)):
            declared |= _classes_of_type(
                module, _field_type(module, instr), rta
            )
        elif isinstance(instr, Invoke):
            target = module.resolve_method(
                instr.methodref.class_name, instr.methodref.method_name
            )
            if target is not None:
                declared |= _classes_of_type(module, target.return_type, rta)

    if allocated:
        return allocated
    if declared:
        return declared

    # Fall back to the declared parameter type.
    for param in method.params:
        if param.name == local.name:
            return _classes_of_type(module, param.type, rta)
    return set()


def _field_type(module: Module, instr) -> Optional[Type]:
    cls = module.lookup_class(instr.fieldref.class_name)
    if cls is not None and instr.fieldref.field_name in cls.fields:
        return cls.fields[instr.fieldref.field_name].type
    return None


def _classes_of_type(
    module: Module, type_: Optional[Type], rta: Set[str]
) -> Set[str]:
    if type_ is None or not type_.is_reference():
        return set()
    cls = module.lookup_class(type_.name)
    if cls is None:
        return set()
    if not cls.is_interface and not is_framework_class(type_.name):
        # A concrete app class declared as its own type: trust it even if
        # the RTA scan missed the allocation (e.g. allocated reflectively).
        return concrete_implementers(module, type_.name, rta) | {type_.name}
    return concrete_implementers(module, type_.name, rta)


def resolve_thread_tasks(
    module: Module, method: Method, thread_local: Local, rta: Set[str]
) -> Set[str]:
    """Classes of Runnables passed to ``new Thread(r)`` for a given local.

    Handles the ubiquitous ``new Thread(new Worker()).start()`` idiom by
    locating the constructor invocation on the same local and resolving its
    first argument.
    """
    # Collect the intra-method copy-aliases of the thread local: the
    # constructor call sits on the allocation temporary, the ``start`` on
    # the user variable.
    aliases: Set[str] = {thread_local.name}
    changed = True
    while changed:
        changed = False
        for instr in method.instructions():
            if isinstance(instr, Assign) and isinstance(instr.source, Local):
                if instr.source.name in aliases and instr.target not in aliases:
                    aliases.add(instr.target)
                    changed = True
                if instr.target in aliases and instr.source.name not in aliases:
                    aliases.add(instr.source.name)
                    changed = True

    tasks: Set[str] = set()
    for instr in method.instructions():
        if (
            isinstance(instr, Invoke)
            and instr.kind == "special"
            and instr.methodref.method_name == "<init>"
            and instr.base is not None
            and instr.base.name in aliases
            and len(instr.args) == 1
            and isinstance(instr.args[0], Local)
        ):
            tasks |= resolve_local_classes(module, method, instr.args[0], rta)
    return tasks
