"""Threadification (paper section 4): model event callbacks as threads."""

from .entrypoints import discover_entry_callbacks, EntryCallback
from .model import ThreadForest, ThreadKind, ThreadNode
from .resolve import (
    concrete_implementers,
    resolve_local_classes,
    resolve_thread_tasks,
)
from .transform import (
    ApiSite,
    DUMMY_MAIN_CLASS,
    REGISTRY_CLASS,
    ThreadifiedProgram,
    Threadifier,
    threadify,
)

__all__ = [
    "ApiSite", "concrete_implementers", "discover_entry_callbacks",
    "DUMMY_MAIN_CLASS", "EntryCallback", "REGISTRY_CLASS",
    "resolve_local_classes", "resolve_thread_tasks", "ThreadForest",
    "ThreadifiedProgram", "Threadifier", "threadify", "ThreadKind",
    "ThreadNode",
]
