"""Thread-forest model produced by threadification (paper section 4).

Threadification models every event callback as a thread.  The result is a
forest: the dummy main thread is the root; *entry callbacks* (lifecycle,
UI, system -- invoked by the Android runtime) are its children; *posted
callbacks* (Handler messages, posted Runnables, service connections,
receivers, AsyncTask callbacks) are children of the callback or thread
that posted/registered them; native threads are children of their
spawners.

The forest preserves the poster->postee lineage the paper uses both to
reduce false positives (PHB filter) and to explain warnings to programmers
(section 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..android.callbacks import CallbackCategory


class ThreadKind(Enum):
    """What kind of modeled thread a forest node is."""

    DUMMY_MAIN = auto()      #: the initial looper thread
    ENTRY_CALLBACK = auto()  #: EC -- externally invoked by the runtime
    POSTED_CALLBACK = auto() #: PC -- posted by another callback/thread
    NATIVE_THREAD = auto()   #: java.lang.Thread / executor task
    ASYNC_BACKGROUND = auto()#: AsyncTask.doInBackground


@dataclass
class ThreadNode:
    """One modeled thread: a callback or native thread entry point.

    ``receiver_class`` is the class whose ``method_name`` body runs;
    ``component`` is the owning Android component (for MHB filters);
    ``looper`` is the looper this callback executes on (``None`` for
    native/background threads, which do not run on a looper).
    """

    node_id: int
    kind: ThreadKind
    receiver_class: str
    method_name: str
    category: Optional[CallbackCategory] = None
    component: Optional[str] = None
    parent: Optional["ThreadNode"] = None
    post_site: Optional[int] = None  #: uid of the posting/registration call
    looper: Optional[str] = "main"
    #: AsyncTask class for MHB-AsyncTask grouping; ServiceConnection class
    #: for MHB-Service grouping.
    group_key: Optional[str] = None

    @property
    def is_callback(self) -> bool:
        return self.kind in (ThreadKind.ENTRY_CALLBACK, ThreadKind.POSTED_CALLBACK)

    @property
    def is_native(self) -> bool:
        return self.kind in (ThreadKind.NATIVE_THREAD, ThreadKind.ASYNC_BACKGROUND)

    @property
    def entry(self) -> Tuple[str, str]:
        return (self.receiver_class, self.method_name)

    def ancestors(self) -> Iterator["ThreadNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def lineage(self) -> List["ThreadNode"]:
        """Root-first path from the dummy main to this node (inclusive)."""
        path = [self, *self.ancestors()]
        path.reverse()
        return path

    def describe(self) -> str:
        """Human-readable lineage, e.g. for the section-7 programmer aids."""
        parts = []
        for node in self.lineage():
            if node.kind is ThreadKind.DUMMY_MAIN:
                parts.append("main")
            else:
                parts.append(f"{node.receiver_class}.{node.method_name}")
        return " -> ".join(parts)

    def lineage_entries(self) -> List[Dict[str, object]]:
        """JSON-safe poster->postee lineage, root (dummy main) first.

        This is the serializable form of :meth:`describe` that survives
        the runner's process boundary: each entry carries the node's
        identity, kind, callback category and the uid of the call site
        that posted/spawned it (``None`` for entry callbacks, which the
        runtime invokes directly).
        """
        entries: List[Dict[str, object]] = []
        for node in self.lineage():
            entries.append({
                "node_id": node.node_id,
                "kind": node.kind.name,
                "entry": "main" if node.kind is ThreadKind.DUMMY_MAIN
                         else f"{node.receiver_class}.{node.method_name}",
                "category": node.category.name if node.category else None,
                "component": node.component,
                "looper": node.looper,
                "post_site": node.post_site,
            })
        return entries

    def __hash__(self) -> int:
        return self.node_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ThreadNode) and other.node_id == self.node_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ThreadNode #{self.node_id} {self.kind.name} "
            f"{self.receiver_class}.{self.method_name}>"
        )


class ThreadForest:
    """The set of modeled threads of one threadified application."""

    def __init__(self) -> None:
        self._nodes: List[ThreadNode] = []
        self.dummy_main = self._new_node(
            ThreadKind.DUMMY_MAIN, "DummyMain", "main", looper="main"
        )

    def _new_node(self, kind: ThreadKind, receiver_class: str, method_name: str,
                  **kwargs) -> ThreadNode:
        node = ThreadNode(
            node_id=len(self._nodes),
            kind=kind,
            receiver_class=receiver_class,
            method_name=method_name,
            **kwargs,
        )
        self._nodes.append(node)
        return node

    def add_entry_callback(
        self,
        receiver_class: str,
        method_name: str,
        category: CallbackCategory,
        component: Optional[str] = None,
    ) -> ThreadNode:
        return self._new_node(
            ThreadKind.ENTRY_CALLBACK,
            receiver_class,
            method_name,
            category=category,
            component=component,
            parent=self.dummy_main,
            looper="main",
        )

    def add_posted_callback(
        self,
        parent: ThreadNode,
        receiver_class: str,
        method_name: str,
        category: CallbackCategory,
        post_site: Optional[int] = None,
        component: Optional[str] = None,
        group_key: Optional[str] = None,
    ) -> ThreadNode:
        return self._new_node(
            ThreadKind.POSTED_CALLBACK,
            receiver_class,
            method_name,
            category=category,
            component=component,
            parent=parent,
            post_site=post_site,
            looper="main",
            group_key=group_key,
        )

    def add_native_thread(
        self,
        parent: ThreadNode,
        receiver_class: str,
        method_name: str = "run",
        post_site: Optional[int] = None,
        kind: ThreadKind = ThreadKind.NATIVE_THREAD,
        group_key: Optional[str] = None,
    ) -> ThreadNode:
        return self._new_node(
            kind,
            receiver_class,
            method_name,
            parent=parent,
            post_site=post_site,
            looper=None,
            group_key=group_key,
        )

    # -- queries ---------------------------------------------------------------

    def __iter__(self) -> Iterator[ThreadNode]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, node_id: int) -> ThreadNode:
        return self._nodes[node_id]

    def callbacks(self) -> List[ThreadNode]:
        return [n for n in self._nodes if n.is_callback]

    def entry_callbacks(self) -> List[ThreadNode]:
        return [n for n in self._nodes if n.kind is ThreadKind.ENTRY_CALLBACK]

    def posted_callbacks(self) -> List[ThreadNode]:
        return [n for n in self._nodes if n.kind is ThreadKind.POSTED_CALLBACK]

    def native_threads(self) -> List[ThreadNode]:
        return [n for n in self._nodes if n.is_native]

    def children(self, node: ThreadNode) -> List[ThreadNode]:
        return [n for n in self._nodes if n.parent is node]

    def descendants(self, node: ThreadNode) -> Set[ThreadNode]:
        result: Set[ThreadNode] = set()
        work = [node]
        while work:
            current = work.pop()
            for child in self.children(current):
                if child not in result:
                    result.add(child)
                    work.append(child)
        return result

    def is_reachable_thread(self, callback: ThreadNode, thread: ThreadNode) -> bool:
        """Is ``thread`` a Reachable Thread (RT) relative to ``callback``?

        Paper section 7: reachability is transitive across thread creation
        and event posting -- i.e. the thread is a forest descendant of the
        callback (or the callback itself spawned it).
        """
        return thread in self.descendants(callback)

    def same_looper(self, a: ThreadNode, b: ThreadNode) -> bool:
        return a.looper is not None and a.looper == b.looper

    def counts(self) -> Dict[str, int]:
        """EC / PC / T counts as reported in Table 1."""
        ec = len(self.entry_callbacks())
        pc = len(self.posted_callbacks())
        # Threads include the dummy UI main thread plus native/background.
        threads = 1 + len(self.native_threads())
        return {"EC": ec, "PC": pc, "T": threads}
