"""Structured event stream for corpus runs (``--events-out``).

A long generated-corpus run used to be a silent wait; this module turns
it into a tail-able JSONL stream.  Each line is one schema-versioned
event::

    {"schema": 1, "event": "app-done", "t": 1.234567, "app": "...",
     "status": "analyzed", "duration_s": 0.021}

Event vocabulary (schema-stable -- new fields may be added, event names
and existing fields never change meaning):

``run-start``
    ``kind`` (task kind), ``apps`` (input app count).
``app-start`` / ``cache-hit`` / ``retry`` / ``timeout`` / ``fault``
    per-app lifecycle; ``fault`` carries ``kind`` (the fault taxonomy
    kind), ``timeout`` precedes its ``fault`` and carries ``seconds``.
``app-done``
    closes every app with ``status`` (``analyzed`` | ``cached`` |
    ``faulted``) and ``duration_s`` (the worker-measured analysis wall
    time, replayed from the cache envelope on hits; absent on faults).
``run-end``
    run totals: ``analyzed``, ``cached``, ``faulted``, ``wall_seconds``.

Timestamps ``t`` are monotonic seconds since the stream's first event.

**Determinism.**  Events are buffered per app and flushed strictly in
input-app order: app *i*'s block is written the moment its outcome --
and every earlier app's -- is known.  A ``--jobs 4`` run therefore
produces the same event sequence as ``--jobs 1`` (only ``t``,
``duration_s`` and ``wall_seconds`` differ), while a serial run streams
fully live and a parallel run streams its completed prefix.

:func:`summarize_events` is the reader: the run funnel plus p50/p95/max
per-app latency, rendered by ``repro events summarize``.
"""

from __future__ import annotations

import json
import math
import time
from typing import Any, Dict, Iterable, List, Optional, TextIO

#: bump when an existing event or field changes meaning (never for
#: purely additive fields)
EVENTS_SCHEMA = 1

EVENT_TYPES = (
    "run-start", "app-start", "app-done", "cache-hit",
    "fault", "retry", "timeout", "run-end",
)


def encode_event(record: Dict[str, Any]) -> str:
    """One canonical JSONL line (sorted keys, no trailing newline)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class JsonlEventSink:
    """Append events to a file, one line each, flushed per event so the
    stream can be tailed while the run is still going."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[TextIO] = None

    def emit(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
        self._handle.write(encode_event(record) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class MemoryEventSink:
    """Retain the event records in memory, in emission order.

    Attached automatically when a driver needs the stream after the run
    without forcing a ``--events-out`` file -- e.g. ``--trace-out``
    turns the retained records into instant events on the Chrome trace
    timeline.
    """

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def emit(self, record: Dict[str, Any]) -> None:
        self.records.append(dict(record))


class ProgressSink:
    """The opt-in ``--progress`` stderr line, derived from the stream.

    One line per closed app: ``[progress] 12/27 apps, 1 fault, 3 cache
    hits``.  Off by default so golden stderr expectations stay
    byte-identical.
    """

    def __init__(self, stream: TextIO) -> None:
        self._stream = stream
        self._total = 0
        self._done = 0
        self._faults = 0
        self._cache_hits = 0

    def emit(self, record: Dict[str, Any]) -> None:
        event = record.get("event")
        if event == "run-start":
            self._total += int(record.get("apps", 0))
        elif event == "app-done":
            self._done += 1
            status = record.get("status")
            if status == "faulted":
                self._faults += 1
            elif status == "cached":
                self._cache_hits += 1
            print(
                f"[progress] {self._done}/{self._total} apps, "
                f"{self._faults} fault{'s' if self._faults != 1 else ''}, "
                f"{self._cache_hits} cache "
                f"hit{'s' if self._cache_hits != 1 else ''}",
                file=self._stream, flush=True,
            )


class RunEventLog:
    """Ordered, incrementally flushed event log for corpus runs.

    The runner records per-app events as they happen (in any completion
    order); the log buffers them per app and flushes whole-app blocks in
    input order.  Multiple sequential ``run_start``/``run_end`` cycles
    may share one log (a driver that fans out twice appends two runs to
    the same stream; ``t`` stays monotonic across them).
    """

    def __init__(self, sinks: Iterable[Any],
                 clock=time.monotonic) -> None:
        self.sinks = list(sinks)
        self._clock = clock
        self._t0: Optional[float] = None
        self._names: List[str] = []
        self._buffers: Dict[str, List] = {}
        self._final: set = set()
        self._next = 0

    # -- emission -------------------------------------------------------------

    def _emit(self, event: str, **fields: Any) -> None:
        now = self._clock()
        if self._t0 is None:
            self._t0 = now
        record = {"schema": EVENTS_SCHEMA, "event": event,
                  "t": round(now - self._t0, 6)}
        record.update(fields)
        for sink in self.sinks:
            sink.emit(record)

    def _flush_ready(self) -> None:
        while self._next < len(self._names):
            name = self._names[self._next]
            if name not in self._final:
                break
            for event, fields in self._buffers.pop(name, ()):
                self._emit(event, app=name, **fields)
            self._next += 1

    # -- run lifecycle --------------------------------------------------------

    def run_start(self, kind: str, names: Iterable[str]) -> None:
        self._names = list(dict.fromkeys(names))
        self._buffers = {name: [] for name in self._names}
        self._final = set()
        self._next = 0
        self._emit("run-start", kind=kind, apps=len(self._names))

    def app_event(self, name: str, event: str, **fields: Any) -> None:
        """Record one mid-flight event for ``name`` (buffered)."""
        if name in self._buffers:
            self._buffers[name].append((event, fields))

    def app_done(self, name: str, status: str,
                 duration_s: Optional[float] = None) -> None:
        """Close ``name`` and flush every app whose turn has come."""
        if name not in self._buffers or name in self._final:
            return
        fields: Dict[str, Any] = {"status": status}
        if duration_s is not None:
            fields["duration_s"] = round(duration_s, 6)
        self._buffers[name].append(("app-done", fields))
        self._final.add(name)
        self._flush_ready()

    def run_end(self, **fields: Any) -> None:
        # A fail-fast abort can leave apps unclosed; flush what we have
        # so the stream stays a faithful prefix of the run.
        self._final.update(self._names)
        self._flush_ready()
        self._emit("run-end", **fields)

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


# -- reading ------------------------------------------------------------------


def read_events(path: str) -> List[Dict[str, Any]]:
    """Parse an events JSONL file; raises ValueError on malformed lines
    or on records without the expected schema stamp."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(
                    f"line {lineno} is not valid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict) \
                    or record.get("schema") != EVENTS_SCHEMA:
                raise ValueError(
                    f"line {lineno} is not a nadroid event "
                    f"(expected schema {EVENTS_SCHEMA})"
                )
            records.append(record)
    return records


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile over a non-empty list (deterministic)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def summarize_events(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The funnel and latency digest of one event stream."""
    summary: Dict[str, Any] = {
        "runs": 0, "apps": 0, "analyzed": 0, "cached": 0, "faulted": 0,
        "retries": 0, "timeouts": 0, "fault_kinds": {},
        "latency": None,
    }
    durations: List[float] = []
    for record in records:
        event = record.get("event")
        if event == "run-start":
            summary["runs"] += 1
            summary["apps"] += int(record.get("apps", 0))
        elif event == "retry":
            summary["retries"] += 1
        elif event == "timeout":
            summary["timeouts"] += 1
        elif event == "fault":
            kind = str(record.get("kind", "unknown"))
            summary["fault_kinds"][kind] = \
                summary["fault_kinds"].get(kind, 0) + 1
        elif event == "app-done":
            status = record.get("status")
            if status == "analyzed":
                summary["analyzed"] += 1
            elif status == "cached":
                summary["cached"] += 1
            elif status == "faulted":
                summary["faulted"] += 1
            if record.get("duration_s") is not None:
                durations.append(float(record["duration_s"]))
    if durations:
        summary["latency"] = {
            "apps": len(durations),
            "p50_s": percentile(durations, 0.50),
            "p95_s": percentile(durations, 0.95),
            "max_s": max(durations),
        }
    return summary


def render_events_summary(summary: Dict[str, Any]) -> str:
    """Human rendering of :func:`summarize_events`."""
    lines = [
        f"{summary['runs']} run(s), {summary['apps']} apps",
        f"  analyzed : {summary['analyzed']}",
        f"  cached   : {summary['cached']}",
        f"  faulted  : {summary['faulted']}",
    ]
    if summary["retries"]:
        lines.append(f"  retries  : {summary['retries']}")
    if summary["timeouts"]:
        lines.append(f"  timeouts : {summary['timeouts']}")
    for kind in sorted(summary["fault_kinds"]):
        lines.append(f"  fault[{kind}]: {summary['fault_kinds'][kind]}")
    latency = summary["latency"]
    if latency:
        lines.append(
            f"per-app latency over {latency['apps']} apps: "
            f"p50 {latency['p50_s'] * 1000:.1f}ms  "
            f"p95 {latency['p95_s'] * 1000:.1f}ms  "
            f"max {latency['max_s'] * 1000:.1f}ms"
        )
    else:
        lines.append("per-app latency: no completed apps")
    return "\n".join(lines)
