"""Serializable metric snapshots and cross-process merging.

The corpus runner analyzes each app in its own worker process under a
fresh :class:`repro.obs.Recorder`; the recorder's snapshot travels back
(and into the result cache) as a plain dict.  :func:`merge_snapshots`
combines per-app snapshots into corpus totals.  Counters are summed --
every counter the pipeline records is an additive quantity.  Gauges are
*measurements*, not additive quantities, so they merge by policy:

* gauges matching :data:`PEAK_GAUGE_PATTERN` (``*.peak_*``, e.g.
  ``mem.app.peak_kb``) are high-water marks and merge **max-wins**;
* every other same-named gauge merges **last-write-wins** (input order),
  matching ``Recorder.set_gauge`` semantics within one process.

Span trees are concatenated in input order, so a merged snapshot is
independent of worker scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterable, List

#: gauges whose names match this pattern are high-water marks: merging
#: two snapshots keeps the max instead of the last-written value
PEAK_GAUGE_PATTERN = "*.peak_*"


@dataclass
class MetricsSnapshot:
    """One recorder's counters, gauges, and serialized span trees."""

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    #: span trees as ``Span.to_dict`` payloads (JSON-safe)
    spans: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "spans": list(self.spans),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsSnapshot":
        return cls(
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            spans=list(data.get("spans", ())),
        )

    def total_span_seconds(self) -> float:
        """Summed duration of the top-level spans."""
        return sum(s.get("duration_s") or 0.0 for s in self.spans)


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Sum counters; merge gauges by policy; concatenate span trees.

    Gauge policy (see the module docstring): ``*.peak_*`` gauges are
    high-water marks and take the max across snapshots; any other
    same-named gauge is last-write-wins in input order.
    """
    merged = MetricsSnapshot()
    for snap in snapshots:
        for name, value in snap.counters.items():
            merged.counters[name] = merged.counters.get(name, 0) + value
        for name, value in snap.gauges.items():
            if fnmatchcase(name, PEAK_GAUGE_PATTERN) \
                    and name in merged.gauges:
                merged.gauges[name] = max(merged.gauges[name], value)
            else:
                merged.gauges[name] = value
        merged.spans.extend(snap.spans)
    return merged
