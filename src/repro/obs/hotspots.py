"""Hotspot attribution: who burns the time inside the fixpoint cores.

Stage spans say *how long* detection took; hotspot metrics say *where*
inside it.  The two incremental cores attribute their inner loops to
named units of work under a shared ``hotspot.`` metric namespace:

* the Datalog engine records, per compiled rule and per stratum, the
  cumulative join time and the number of facts the unit derived
  (``hotspot.datalog.rule.<id>.facts`` / ``.seconds``,
  ``hotspot.datalog.stratum.<i>.facts`` / ``.seconds``);
* the points-to worklist solver records, per ``(method, context)``
  pair, how often the pair was popped and the cumulative
  ``_process`` time (``hotspot.pointsto.pair.<key>.pops`` /
  ``.seconds``).

Counts land in **counters** (deterministic: identical across ``--jobs``
settings and gated by ``bench --compare``, see
:data:`repro.harness.bench.GATED_COUNTER_PREFIXES`); times land in
**gauges** (measurements).  Both ride inside the ordinary
:class:`~repro.obs.metrics.MetricsSnapshot`, so they cross the worker
process boundary, enter the result-cache envelope, and replay on cache
hits exactly like span trees do.

:func:`collect_hotspots` turns snapshots back into a ranked table;
ranking is by the deterministic count (then name), never by time, so a
top-K table is byte-identical across runs once the time column is
normalized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

#: metric namespace prefix shared by every attribution counter/gauge
HOTSPOT_PREFIX = "hotspot."

#: attribution domains, longest-prefix-first for parsing
DOMAINS = ("datalog.rule", "datalog.stratum", "pointsto.pair")

#: counter suffixes that carry the deterministic count of a unit
_COUNT_METRICS = ("facts", "pops")
#: gauge suffix that carries the cumulative seconds of a unit
_TIME_METRIC = "seconds"


@dataclass
class HotspotEntry:
    """One attributed unit of work, aggregated over snapshots."""

    domain: str   #: ``datalog.rule`` | ``datalog.stratum`` | ``pointsto.pair``
    name: str     #: rule id, stratum index, or ``method@context`` key
    count: int    #: derived facts (datalog) or worklist pops (points-to)
    seconds: float

    @property
    def sort_key(self) -> Tuple:
        """Deterministic ranking: count descending, then domain, name."""
        return (-self.count, self.domain, self.name)


def _parse(metric: str) -> Tuple[str, str, str]:
    """Split ``hotspot.<domain>.<name>.<metric>``; raises ValueError."""
    rest = metric[len(HOTSPOT_PREFIX):]
    for domain in DOMAINS:
        if rest.startswith(domain + "."):
            body = rest[len(domain) + 1:]
            name, _, suffix = body.rpartition(".")
            if name and suffix:
                return domain, name, suffix
    raise ValueError(f"unrecognized hotspot metric {metric!r}")


def collect_hotspots(snapshots: Iterable[Any]) -> List[HotspotEntry]:
    """Aggregate ``hotspot.*`` metrics from snapshots into ranked entries.

    Counts and seconds are *summed* across snapshots (per-app snapshots
    of one corpus run aggregate into corpus-wide attribution; the same
    rule in two apps is one row).  Unparseable ``hotspot.*`` names are
    ignored -- forward compatibility with newer emitters.
    """
    counts: Dict[Tuple[str, str], int] = {}
    seconds: Dict[Tuple[str, str], float] = {}
    for snapshot in snapshots:
        for metric, value in snapshot.counters.items():
            if not metric.startswith(HOTSPOT_PREFIX):
                continue
            try:
                domain, name, suffix = _parse(metric)
            except ValueError:
                continue
            if suffix in _COUNT_METRICS:
                key = (domain, name)
                counts[key] = counts.get(key, 0) + int(value)
        for metric, value in snapshot.gauges.items():
            if not metric.startswith(HOTSPOT_PREFIX):
                continue
            try:
                domain, name, suffix = _parse(metric)
            except ValueError:
                continue
            if suffix == _TIME_METRIC:
                key = (domain, name)
                seconds[key] = seconds.get(key, 0.0) + float(value)
    entries = [
        HotspotEntry(domain=key[0], name=key[1],
                     count=counts.get(key, 0),
                     seconds=seconds.get(key, 0.0))
        for key in set(counts) | set(seconds)
    ]
    entries.sort(key=lambda e: e.sort_key)
    return entries


def top_hotspots(entries: List[HotspotEntry], top: int,
                 domain: str = "") -> List[HotspotEntry]:
    """The first ``top`` entries, optionally restricted to one domain."""
    if domain:
        entries = [e for e in entries if e.domain == domain]
    return entries[:max(0, top)]


def render_hotspots(entries: List[HotspotEntry], top: int = 20) -> str:
    """The deterministic top-K hotspot table.

    Rank and the count column depend only on the analyzed input; the
    seconds column is the only measurement, so normalizing it yields a
    byte-identical table across ``--jobs`` settings.
    """
    selected = top_hotspots(entries, top)
    if not selected:
        return "no hotspot metrics recorded"
    name_width = max(4, *(len(e.name) for e in selected))
    header = (f"{'#':>3} {'domain':<16} {'name':<{name_width}} "
              f"{'count':>10} {'seconds':>10}")
    lines = [header, "-" * len(header)]
    for rank, entry in enumerate(selected, start=1):
        lines.append(
            f"{rank:>3} {entry.domain:<16} {entry.name:<{name_width}} "
            f"{entry.count:>10} {entry.seconds:>10.4f}"
        )
    total = len(entries)
    if total > len(selected):
        lines.append(f"... {total - len(selected)} more unit(s) below the "
                     f"top {len(selected)}")
    return "\n".join(lines)
