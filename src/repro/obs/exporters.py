"""Standard-format telemetry exporters: Prometheus, Chrome trace, flames.

The obs layer records everything into its own JSON shapes
(:class:`~repro.obs.metrics.MetricsSnapshot`, the ``--events-out``
stream).  This module translates those shapes into the three formats the
rest of the world's tooling already consumes, with zero new
dependencies:

* :func:`prometheus_text` -- the Prometheus text exposition format
  (``# TYPE`` headers plus samples), byte-stable for a given snapshot,
  with a deterministic label mapping for the structured
  ``hotspot.*``/``mem.*``/``runner.*`` metric families;
* :func:`chrome_trace` / :func:`trace_from_events` -- Chrome
  trace-event JSON (the format Perfetto and ``chrome://tracing`` load):
  the recorded span trees stitched into one timeline with a synthetic
  pid/tid lane per app, plus instant events from the run event stream;
* :func:`collapsed_stacks` -- Brendan Gregg's collapsed-stack format
  over span paths (self-time) and hotspot cumulative seconds, ready for
  ``flamegraph.pl`` or speedscope.

Determinism contract: everything here is a pure function of its inputs.
Serialized spans carry no absolute timestamps, so the trace timeline is
*synthetic* -- each app starts its own lane at t=0 and children are laid
out sequentially from their parent's start -- which keeps two exports of
the same run identical up to durations.  :func:`trace_from_events`, by
contrast, uses the stream's real ``t`` offsets, so it shows the actual
fan-out concurrency of a run.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .hotspots import collect_hotspots, HOTSPOT_PREFIX
from .metrics import MetricsSnapshot

#: every exported Prometheus family is prefixed with this namespace
PROM_NAMESPACE = "nadroid"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


# -- Prometheus text exposition ----------------------------------------------


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format: backslash,
    double quote, and line feed."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def sanitize_metric_name(name: str) -> str:
    """Fold an arbitrary dotted metric name into a legal Prometheus
    name: every illegal character becomes ``_`` (deterministically)."""
    out = _NAME_BAD_CHARS.sub("_", name.replace(".", "_"))
    if not out or not _NAME_OK.match(out):
        out = "_" + out
    return out


def _format_value(value) -> str:
    """Sample values: integers stay integers; floats use ``repr``
    (shortest round-trip), which is byte-stable for a given float."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def _map_hotspot(name: str, is_counter: bool) -> Optional[Tuple[str, Dict[str, str]]]:
    """``hotspot.<domain>.<unit>.<metric>`` -> labeled family."""
    from .hotspots import DOMAINS

    rest = name[len(HOTSPOT_PREFIX):]
    for domain in DOMAINS:
        if rest.startswith(domain + "."):
            body = rest[len(domain) + 1:]
            unit, _, metric = body.rpartition(".")
            if not unit or not metric:
                return None
            labels = {"domain": domain, "unit": unit}
            if is_counter:
                labels["metric"] = metric
                return f"{PROM_NAMESPACE}_hotspot_count_total", labels
            if metric == "seconds":
                return f"{PROM_NAMESPACE}_hotspot_seconds", labels
            return (f"{PROM_NAMESPACE}_hotspot_"
                    f"{sanitize_metric_name(metric)}", labels)
    return None


def _map_mem(name: str) -> Optional[Tuple[str, Dict[str, str]]]:
    """``mem.app.peak_kb`` / ``mem.stage.<stage>.peak_kb`` -> labeled
    ``nadroid_mem_peak_kb`` samples."""
    if name == "mem.app.peak_kb":
        return f"{PROM_NAMESPACE}_mem_peak_kb", {"scope": "app"}
    prefix, suffix = "mem.stage.", ".peak_kb"
    if name.startswith(prefix) and name.endswith(suffix) \
            and len(name) > len(prefix) + len(suffix):
        stage = name[len(prefix):-len(suffix)]
        return f"{PROM_NAMESPACE}_mem_peak_kb", \
            {"scope": "stage", "stage": stage}
    return None


def _map_runner(name: str, is_counter: bool) -> Tuple[str, Dict[str, str]]:
    """``runner.faults.<kind>`` keeps the fault kind as a label; every
    other ``runner.*`` metric maps by name."""
    if name.startswith("runner.faults.") and is_counter:
        kind = name[len("runner.faults."):]
        return f"{PROM_NAMESPACE}_runner_faults_total", {"kind": kind}
    family = f"{PROM_NAMESPACE}_{sanitize_metric_name(name)}"
    if is_counter:
        family += "_total"
    return family, {}


def metric_family(name: str, is_counter: bool) -> Tuple[str, Dict[str, str]]:
    """The deterministic (family, labels) mapping for one metric name.

    Structured families (``hotspot.*``, ``mem.*``, ``runner.*``) map to
    labeled samples; everything else maps positionally --
    ``a.b.c`` -> ``nadroid_a_b_c`` (counters gain the conventional
    ``_total`` suffix).  Characters outside ``[a-zA-Z0-9_:]`` (unicode
    app names, rule ids with ``#``) fold to ``_`` in metric names and
    survive verbatim, escaped, in label values.
    """
    if name.startswith(HOTSPOT_PREFIX):
        mapped = _map_hotspot(name, is_counter)
        if mapped is not None:
            return mapped
    if name.startswith("mem."):
        mapped = _map_mem(name)
        if mapped is not None:
            return mapped
    if name.startswith("runner."):
        return _map_runner(name, is_counter)
    family = f"{PROM_NAMESPACE}_{sanitize_metric_name(name)}"
    if is_counter:
        family += "_total"
    return family, {}


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return "{" + inner + "}"


def prometheus_text(snapshot: MetricsSnapshot) -> str:
    """Render one snapshot as Prometheus text exposition (version 0.0.4).

    Families are emitted in sorted order, each under exactly one
    ``# TYPE`` header, samples sorted by label string -- so the output
    is byte-stable for a given snapshot.  An empty snapshot renders as
    the empty string.
    """
    # family -> (type, [(labels_text, value_text)])
    families: Dict[str, Tuple[str, List[Tuple[str, str]]]] = {}

    def collect(items: Mapping[str, Any], kind: str) -> None:
        for name in items:
            family, labels = metric_family(name, kind == "counter")
            entry = families.setdefault(family, (kind, []))
            if entry[0] != kind:
                # a name collision across kinds (should not happen with
                # the conventions above); disambiguate the gauge family
                family += "_gauge"
                entry = families.setdefault(family, (kind, []))
            entry[1].append(
                (_render_labels(labels), _format_value(items[name]))
            )

    collect(snapshot.counters, "counter")
    collect(snapshot.gauges, "gauge")
    lines: List[str] = []
    for family in sorted(families):
        kind, samples = families[family]
        lines.append(f"# TYPE {family} {kind}")
        for labels_text, value_text in sorted(samples):
            lines.append(f"{family}{labels_text} {value_text}")
    return "\n".join(lines) + "\n" if lines else ""


# -- Chrome trace-event JSON --------------------------------------------------


def _us(seconds: float) -> int:
    return int(round(seconds * 1e6))


def _span_events(node: Dict[str, Any], start_s: float, pid: int,
                 tid: int, out: List[Dict[str, Any]]) -> float:
    """Emit one serialized span tree as complete ``X`` events.

    Spans carry durations but no absolute timestamps, so the layout is
    synthetic: a node starts at ``start_s`` and its children are laid
    out sequentially from there.  Emission is depth-first, which keeps
    timestamps monotone (non-decreasing) within the lane.  Returns the
    node's duration.
    """
    duration = node.get("duration_s") or 0.0
    event: Dict[str, Any] = {
        "ph": "X",
        "name": str(node.get("name", "?")),
        "pid": pid,
        "tid": tid,
        "ts": _us(start_s),
        "dur": _us(duration),
    }
    attrs = {
        key: value for key, value in node.get("attrs", {}).items()
        if key != "profile"
    }
    if attrs:
        event["args"] = attrs
    out.append(event)
    cursor = start_s
    for child in node.get("children", ()):
        cursor += _span_events(child, cursor, pid, tid, out)
    return duration


def _process_meta(pid: int, name: str) -> Dict[str, Any]:
    return {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "ts": 0, "args": {"name": name}}


def chrome_trace(
    apps: Mapping[str, MetricsSnapshot],
    events: Optional[Iterable[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Stitch per-app span trees into one Chrome trace-event payload.

    Each app becomes its own synthetic process lane (pid = 1-based input
    order, named ``app:<name>`` via a ``process_name`` metadata event);
    its span trees render as complete ``X`` events laid out sequentially
    from t=0.  ``events`` (records from the ``--events-out`` stream)
    land as instant ``i`` events on pid 0 (``run``), at their real
    stream offsets.  The result loads in Perfetto / ``chrome://tracing``
    and round-trips ``json.loads`` unchanged.
    """
    trace_events: List[Dict[str, Any]] = []
    if events:
        trace_events.append(_process_meta(0, "run"))
        for record in events:
            args = {key: value for key, value in record.items()
                    if key not in ("schema", "event", "t")}
            instant: Dict[str, Any] = {
                "ph": "i",
                "s": "g",
                "name": str(record.get("event", "?")),
                "pid": 0,
                "tid": 1,
                "ts": _us(float(record.get("t", 0.0))),
            }
            if args:
                instant["args"] = args
            trace_events.append(instant)
    for index, (name, snapshot) in enumerate(apps.items(), start=1):
        trace_events.append(_process_meta(index, f"app:{name}"))
        cursor = 0.0
        for root in snapshot.spans:
            cursor += _span_events(root, cursor, index, 1, trace_events)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "nadroid"},
    }


def trace_from_events(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """A *real-time* trace built from an ``--events-out`` stream alone.

    Each app gets a thread lane (tid = first-seen order) on pid 1
    (``apps``); its ``app-start``/``app-done`` pair becomes one complete
    ``X`` event spanning the actual stream offsets, and mid-flight
    events (``cache-hit``, ``retry``, ``timeout``, ``fault``) become
    instants on the same lane.  Run boundaries land as instants on
    pid 0.  Events are emitted sorted by timestamp (stably), so the
    stamps are monotone within every lane.
    """
    trace_events: List[Dict[str, Any]] = []
    trace_events.append(_process_meta(0, "run"))
    trace_events.append(_process_meta(1, "apps"))
    lanes: Dict[str, int] = {}
    starts: Dict[str, float] = {}
    for record in records:
        event = str(record.get("event", "?"))
        t = float(record.get("t", 0.0))
        app = record.get("app")
        if app is None:
            args = {key: value for key, value in record.items()
                    if key not in ("schema", "event", "t")}
            instant = {"ph": "i", "s": "g", "name": event,
                       "pid": 0, "tid": 1, "ts": _us(t)}
            if args:
                instant["args"] = args
            trace_events.append(instant)
            continue
        tid = lanes.setdefault(str(app), len(lanes) + 1)
        if event == "app-start":
            starts[str(app)] = t
            continue
        if event == "app-done":
            start = starts.pop(str(app), t)
            duration = record.get("duration_s")
            end = max(t, start + float(duration)) \
                if duration is not None else t
            trace_events.append({
                "ph": "X", "name": str(app), "pid": 1, "tid": tid,
                "ts": _us(start), "dur": _us(end - start),
                "args": {"status": record.get("status")},
            })
            continue
        args = {key: value for key, value in record.items()
                if key not in ("schema", "event", "t", "app")}
        instant = {"ph": "i", "s": "t", "name": event,
                   "pid": 1, "tid": tid, "ts": _us(t)}
        if args:
            instant["args"] = args
        trace_events.append(instant)
    # an app's X event lands at its *start* stamp but is emitted at
    # app-done time; a stable sort restores per-lane monotonicity
    trace_events.sort(key=lambda event: event.get("ts", 0))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "nadroid"},
    }


def write_trace(path: str, trace: Dict[str, Any]) -> None:
    """Write a trace payload canonically (sorted keys, trailing newline);
    event order inside ``traceEvents`` is preserved."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True, indent=2)
        handle.write("\n")


# -- collapsed-stack flamegraph -----------------------------------------------


def _frame(name: str) -> str:
    """Collapsed-stack frames may not contain the separators."""
    return str(name).replace(";", "_").replace(" ", "_")


def collapsed_stacks(snapshots: Iterable[MetricsSnapshot]) -> str:
    """Collapsed-stack lines (``frame;frame value``) over span paths and
    hotspot attribution, in microseconds.

    Span stacks weight each path by its *self* time (duration minus
    children), so the flame's widths add up like a sampled profile;
    hotspot units appear under a synthetic ``hotspot;<domain>;<name>``
    root weighted by their cumulative seconds.  Lines are sorted, so the
    output is stable for a given input.
    """
    snapshots = list(snapshots)
    weights: Dict[str, int] = {}

    def visit(node: Dict[str, Any], path: str) -> None:
        here = f"{path};{_frame(node.get('name', '?'))}" if path \
            else _frame(node.get("name", "?"))
        duration = node.get("duration_s") or 0.0
        child_total = 0.0
        for child in node.get("children", ()):
            child_total += child.get("duration_s") or 0.0
            visit(child, here)
        self_us = _us(max(0.0, duration - child_total))
        if self_us > 0:
            weights[here] = weights.get(here, 0) + self_us

    for snapshot in snapshots:
        for root in snapshot.spans:
            visit(root, "")
    for entry in collect_hotspots(snapshots):
        value = _us(entry.seconds)
        if value <= 0:
            continue
        key = f"hotspot;{_frame(entry.domain)};{_frame(entry.name)}"
        weights[key] = weights.get(key, 0) + value
    lines = [f"{path} {weights[path]}" for path in sorted(weights)]
    return "\n".join(lines) + "\n" if lines else ""
