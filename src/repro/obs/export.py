"""Exporters: human-readable trace trees and deterministic JSON.

Two formats, per the determinism contract (stdout stays byte-stable
across ``--jobs`` settings, so everything here targets stderr or files):

* :func:`render_spans` / :func:`render_metrics` -- indented text for
  ``--trace`` on stderr,
* :func:`snapshot_to_json` / :func:`write_json` -- canonical JSON for
  ``--metrics-out`` and ``BENCH_*.json``: keys sorted at every level, so
  two exports of the same analysis differ only in duration values.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from .metrics import MetricsSnapshot


def _format_duration(duration) -> str:
    if duration is None:
        return "?"
    if duration >= 1.0:
        return f"{duration:.2f}s"
    return f"{duration * 1000:.2f}ms"


def render_spans(spans: Iterable[Dict[str, Any]], indent: int = 0) -> str:
    """Render serialized span trees as an indented tree, one per root."""
    lines: List[str] = []

    def visit(node: Dict[str, Any], depth: int) -> None:
        attrs = node.get("attrs", {})
        extra = "".join(
            f" {key}={value}" for key, value in sorted(attrs.items())
            if key != "profile"
        )
        lines.append(
            f"{'  ' * depth}{node['name']}  "
            f"{_format_duration(node.get('duration_s'))}{extra}"
        )
        for child in node.get("children", ()):
            visit(child, depth + 1)

    for root in spans:
        visit(root, indent)
    return "\n".join(lines)


def render_metrics(snapshot: MetricsSnapshot) -> str:
    """Counters then gauges, one ``name = value`` line each, sorted."""
    lines = [
        f"{name} = {snapshot.counters[name]}"
        for name in sorted(snapshot.counters)
    ]
    lines.extend(
        f"{name} = {snapshot.gauges[name]:.6f}"
        for name in sorted(snapshot.gauges)
    )
    return "\n".join(lines)


def describe_run(snapshot: MetricsSnapshot) -> str:
    """The runner's one-line stderr summary, derived from run metrics."""
    counters = snapshot.counters
    analyzed = counters.get("runner.apps.analyzed", 0)
    cached = counters.get("runner.apps.cached", 0)
    jobs = int(snapshot.gauges.get("runner.jobs", 1))
    wall = snapshot.gauges.get("runner.wall_seconds", 0.0)
    line = (
        f"{analyzed + cached} apps ({analyzed} analyzed, "
        f"{cached} from cache) in {wall:.2f}s "
        f"with {jobs} job{'s' if jobs != 1 else ''}"
    )
    hits = counters.get("runner.cache.hits", 0)
    misses = counters.get("runner.cache.misses", 0)
    stores = counters.get("runner.cache.stores", 0)
    if hits or misses or stores:
        line += f"; cache: {hits} hits, {misses} misses, {stores} stores"
    faulted = counters.get("runner.apps.faulted", 0)
    if faulted:
        line += f"; {faulted} faulted"
        # break the faults down by taxonomy kind when the run recorded
        # them, so a [fault]-bearing run summarizes honestly in one line
        kinds = {
            name[len("runner.faults."):]: value
            for name, value in counters.items()
            if name.startswith("runner.faults.") and value
        }
        if kinds:
            line += " (" + ", ".join(
                f"{kind}={kinds[kind]}" for kind in sorted(kinds)
            ) + ")"
        else:
            timeouts = counters.get("runner.timeouts", 0)
            if timeouts:
                line += f" ({timeouts} timed out)"
    retries = counters.get("runner.retries", 0)
    if retries:
        line += f"; {retries} retr{'ies' if retries != 1 else 'y'}"
    corrupt = counters.get("runner.cache.corrupt", 0)
    if corrupt:
        line += f"; {corrupt} corrupt cache entr" \
                f"{'ies quarantined' if corrupt != 1 else 'y quarantined'}"
    return line


def snapshot_to_json(snapshot: MetricsSnapshot, indent: int = 2) -> str:
    """Canonical JSON for one snapshot (stable key order at every level)."""
    return json.dumps(snapshot.to_dict(), sort_keys=True, indent=indent)


def write_json(path, payload: Dict[str, Any]) -> None:
    """Write any JSON-safe payload canonically (sorted keys, trailing \\n)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")
