"""Live telemetry for long runs: ``--serve-telemetry PORT``.

A 1000-app generated-corpus run (or a future ``repro serve`` daemon) is
minutes of silence unless something exposes its state *while it runs*.
This module provides that surface with the stdlib only:

* :class:`LiveAggregator` -- a thread-safe sink the corpus runner feeds
  as each app starts/finishes.  It maintains the run funnel (done /
  total, analyzed / cached / faulted, retries), per-app latency
  quantiles, and a merged :class:`~repro.obs.metrics.MetricsSnapshot`
  of every finished app's counters and gauges (span trees are *not*
  retained -- the aggregator is O(metrics), not O(run)).
* :class:`TelemetryServer` -- a background ``http.server`` thread bound
  to **127.0.0.1 only** (the endpoint is an operator surface, never a
  public one) serving:

  - ``/metrics``  -- Prometheus text exposition of the aggregate
    (via :func:`repro.obs.exporters.prometheus_text`),
  - ``/healthz``  -- liveness (``ok``),
  - ``/progress`` -- JSON: apps done/total, faults, retries, p50/p95
    latency so far, the current phase.

Determinism contract: the aggregator only *observes* -- it never writes
to stdout, never touches analysis state, and the runner's results,
reports and bench counters are byte-identical with and without it
attached (pinned by ``tests/obs/test_telemetry.py``).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from .events import percentile
from .exporters import prometheus_text
from .metrics import merge_snapshots, MetricsSnapshot

#: the only address the telemetry endpoint ever binds; serving run
#: internals beyond loopback is an operator decision this module
#: deliberately does not offer
TELEMETRY_HOST = "127.0.0.1"


class LoopbackHTTPServer(ThreadingHTTPServer):
    """The HTTP server base for every nadroid endpoint (telemetry and
    the ``repro serve`` daemon).

    ``allow_reuse_address`` is pinned on explicitly: back-to-back runs
    (CI re-invocations, daemon restarts) must be able to rebind a port
    still in ``TIME_WAIT`` instead of flaking with ``EADDRINUSE``.
    Handler threads are daemonic so a hung client can never block
    process exit.
    """

    allow_reuse_address = True
    daemon_threads = True


class LiveAggregator:
    """Thread-safe run aggregation behind the telemetry endpoint.

    The runner thread calls the ``run_*``/``app_*`` hooks; HTTP handler
    threads call :meth:`progress`, :meth:`prometheus`, and
    :meth:`healthy` concurrently.  All state lives behind one lock.
    """

    def __init__(self, clock=time.monotonic) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._started_at = clock()
        #: explicit driver-level label (set_phase) -- wins over the kind
        self._phase: Optional[str] = None
        #: the task kind of the current run (run_started)
        self._kind = "idle"
        self._runs = 0
        self._total = 0
        self._done = 0
        self._statuses: Dict[str, int] = {
            "analyzed": 0, "cached": 0, "faulted": 0,
        }
        self._retries = 0
        self._active: List[str] = []
        self._durations: List[float] = []
        self._merged = MetricsSnapshot()

    # -- runner-side hooks ----------------------------------------------------

    def run_started(self, kind: str, apps: int) -> None:
        with self._lock:
            self._runs += 1
            self._total += int(apps)
            self._kind = kind

    def set_phase(self, phase: str) -> None:
        """Name the current stage of a multi-run driver (e.g. a bench
        that fans out twice); surfaced in ``/progress``."""
        with self._lock:
            self._phase = str(phase)

    def app_started(self, name: str) -> None:
        with self._lock:
            if name not in self._active:
                self._active.append(name)

    def record_retry(self) -> None:
        with self._lock:
            self._retries += 1

    def app_finished(self, name: str, status: str,
                     duration_s: Optional[float] = None,
                     snapshot: Optional[MetricsSnapshot] = None) -> None:
        with self._lock:
            self._done += 1
            self._statuses[status] = self._statuses.get(status, 0) + 1
            if name in self._active:
                self._active.remove(name)
            if duration_s is not None:
                self._durations.append(float(duration_s))
            if snapshot is not None:
                # merge counters/gauges only: spans would make the
                # aggregator's footprint proportional to the run
                self._merged = merge_snapshots([
                    self._merged,
                    MetricsSnapshot(counters=snapshot.counters,
                                    gauges=snapshot.gauges),
                ])

    def run_finished(self, run_snapshot: Optional[MetricsSnapshot] = None) \
            -> None:
        """Close one run; ``run_snapshot`` (the runner's fan-out/cache
        counters) joins the aggregate so ``/metrics`` exposes the
        ``runner.*`` family too."""
        with self._lock:
            if run_snapshot is not None:
                self._merged = merge_snapshots([
                    self._merged,
                    MetricsSnapshot(counters=run_snapshot.counters,
                                    gauges=run_snapshot.gauges),
                ])
            self._kind = "idle"

    # -- reader side ----------------------------------------------------------

    def healthy(self) -> bool:
        return True

    def progress(self) -> Dict[str, Any]:
        """The ``/progress`` JSON payload."""
        with self._lock:
            latency = None
            if self._durations:
                latency = {
                    "apps": len(self._durations),
                    "p50_s": percentile(self._durations, 0.50),
                    "p95_s": percentile(self._durations, 0.95),
                    "max_s": max(self._durations),
                }
            return {
                "phase": self._phase or self._kind,
                "kind": self._kind,
                "runs": self._runs,
                "apps": {
                    "total": self._total,
                    "done": self._done,
                    "analyzed": self._statuses.get("analyzed", 0),
                    "cached": self._statuses.get("cached", 0),
                    "faulted": self._statuses.get("faulted", 0),
                },
                "active": list(self._active),
                "retries": self._retries,
                "latency": latency,
                "uptime_s": round(self._clock() - self._started_at, 6),
            }

    def snapshot(self) -> MetricsSnapshot:
        """The merged metrics plus the aggregator's own ``telemetry.*``
        funnel counters/gauges, as one snapshot."""
        with self._lock:
            counters = dict(self._merged.counters)
            gauges = dict(self._merged.gauges)
            counters["telemetry.runs"] = self._runs
            counters["telemetry.apps.total"] = self._total
            counters["telemetry.apps.done"] = self._done
            for status in sorted(self._statuses):
                counters[f"telemetry.apps.{status}"] = \
                    self._statuses[status]
            counters["telemetry.retries"] = self._retries
            gauges["telemetry.apps.active"] = float(len(self._active))
            gauges["telemetry.uptime_seconds"] = \
                self._clock() - self._started_at
            if self._durations:
                gauges["telemetry.latency.p50_seconds"] = \
                    percentile(self._durations, 0.50)
                gauges["telemetry.latency.p95_seconds"] = \
                    percentile(self._durations, 0.95)
                gauges["telemetry.latency.max_seconds"] = \
                    max(self._durations)
            return MetricsSnapshot(counters=counters, gauges=gauges)

    def prometheus(self) -> str:
        """The ``/metrics`` body: Prometheus text of the aggregate."""
        return prometheus_text(self.snapshot())


def telemetry_response(
    aggregator: LiveAggregator, path: str,
) -> Optional[Tuple[int, str, str]]:
    """Route one GET path to its ``(status, content_type, body)``.

    The shared routing table behind both the ``--serve-telemetry``
    endpoint and the ``repro serve`` daemon (which mounts the same
    aggregator next to its job API).  Returns ``None`` for paths this
    surface does not own, so callers can layer their own routes.
    """
    if path == "/metrics":
        return (200, "text/plain; version=0.0.4; charset=utf-8",
                aggregator.prometheus())
    if path == "/healthz":
        ok = aggregator.healthy()
        return (200 if ok else 503, "text/plain; charset=utf-8",
                "ok\n" if ok else "unhealthy\n")
    if path == "/progress":
        body = json.dumps(aggregator.progress(), sort_keys=True,
                          indent=2) + "\n"
        return (200, "application/json; charset=utf-8", body)
    return None


class _Handler(BaseHTTPRequestHandler):
    """Routes GETs to the aggregator; silent (no stderr access logs)."""

    server_version = "nadroid-telemetry"

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        aggregator = self.server.aggregator  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        response = telemetry_response(aggregator, path)
        if response is None:
            response = (404, "text/plain; charset=utf-8", "not found\n")
        self._send(*response)

    def log_message(self, format: str, *args: Any) -> None:
        """Suppressed: request logs would race the run's own stderr."""


class TelemetryServer:
    """The background HTTP thread serving one :class:`LiveAggregator`.

    Binds ``127.0.0.1`` only; ``port=0`` asks the OS for a free port
    (read the real one from :attr:`port` after :meth:`start`).
    """

    def __init__(self, aggregator: LiveAggregator, port: int = 0) -> None:
        self.aggregator = aggregator
        self.requested_port = int(port)
        self._server: Optional[LoopbackHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> Optional[int]:
        return self._server.server_address[1] if self._server else None

    @property
    def url(self) -> Optional[str]:
        if self._server is None:
            return None
        return f"http://{TELEMETRY_HOST}:{self.port}"

    def start(self) -> "TelemetryServer":
        """Bind and serve on a daemon thread; raises ``OSError`` when the
        port is taken (``port=0`` always binds: the OS picks one)."""
        server = LoopbackHTTPServer(
            (TELEMETRY_HOST, self.requested_port), _Handler
        )
        server.aggregator = self.aggregator  # type: ignore[attr-defined]
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="nadroid-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
