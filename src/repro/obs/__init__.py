"""repro.obs -- zero-dependency observability for the nAdroid pipeline.

Three layers, all optional at every call site:

* **Spans** (:func:`span`) -- nested wall-clock timing regions forming a
  trace tree per analysis.  A span always times itself, recorder or not,
  so :class:`repro.core.AnalysisResult` timings work outside any
  instrumentation context.
* **Counters and gauges** (:func:`add`, :func:`set_gauge`) -- named
  deterministic quantities (fact counts, worklist passes, filter funnel
  sizes) and non-deterministic measurements (wall seconds).  No-ops when
  no recorder is installed.
* **Snapshots** (:class:`MetricsSnapshot`) -- the JSON-serializable view
  of one recorder, merged across worker processes by the corpus runner.

Determinism contract: nothing here ever writes to stdout; exporters
target stderr or opt-in files, and counter values depend only on the
analyzed input, never on scheduling or parallelism.

Typical use::

    recorder = Recorder()
    with use(recorder):
        with span("pointsto"):
            ...
            add("pointsto.passes", passes)
    print(render_spans(recorder.snapshot().spans), file=sys.stderr)
"""

from .recorder import (
    add,
    current,
    Recorder,
    set_gauge,
    Span,
    span,
    use,
)
from .metrics import merge_snapshots, MetricsSnapshot
from .export import (
    describe_run,
    render_metrics,
    render_spans,
    snapshot_to_json,
    write_json,
)

__all__ = [
    "add",
    "current",
    "describe_run",
    "merge_snapshots",
    "MetricsSnapshot",
    "Recorder",
    "render_metrics",
    "render_spans",
    "set_gauge",
    "Span",
    "span",
    "snapshot_to_json",
    "use",
    "write_json",
]
