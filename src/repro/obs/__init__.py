"""repro.obs -- zero-dependency observability for the nAdroid pipeline.

Three layers, all optional at every call site:

* **Spans** (:func:`span`) -- nested wall-clock timing regions forming a
  trace tree per analysis.  A span always times itself, recorder or not,
  so :class:`repro.core.AnalysisResult` timings work outside any
  instrumentation context.
* **Counters and gauges** (:func:`add`, :func:`set_gauge`) -- named
  deterministic quantities (fact counts, worklist passes, filter funnel
  sizes) and non-deterministic measurements (wall seconds).  No-ops when
  no recorder is installed.
* **Snapshots** (:class:`MetricsSnapshot`) -- the JSON-serializable view
  of one recorder, merged across worker processes by the corpus runner.

Determinism contract: nothing here ever writes to stdout; exporters
target stderr or opt-in files, and counter values depend only on the
analyzed input, never on scheduling or parallelism.

Typical use::

    recorder = Recorder()
    with use(recorder):
        with span("pointsto"):
            ...
            add("pointsto.passes", passes)
    print(render_spans(recorder.snapshot().spans), file=sys.stderr)
"""

from .recorder import (
    add,
    add_gauge,
    current,
    Recorder,
    set_gauge,
    Span,
    span,
    use,
)
from .metrics import merge_snapshots, MetricsSnapshot, PEAK_GAUGE_PATTERN
from .export import (
    describe_run,
    render_metrics,
    render_spans,
    snapshot_to_json,
    write_json,
)
from .hotspots import (
    collect_hotspots,
    HOTSPOT_PREFIX,
    HotspotEntry,
    render_hotspots,
    top_hotspots,
)
from .events import (
    EVENTS_SCHEMA,
    JsonlEventSink,
    MemoryEventSink,
    ProgressSink,
    read_events,
    render_events_summary,
    RunEventLog,
    summarize_events,
)
from .memory import MemoryTracker, track_memory
from .exporters import (
    chrome_trace,
    collapsed_stacks,
    prometheus_text,
    trace_from_events,
    write_trace,
)
from .telemetry import LiveAggregator, TelemetryServer

__all__ = [
    "add",
    "add_gauge",
    "chrome_trace",
    "collapsed_stacks",
    "collect_hotspots",
    "current",
    "describe_run",
    "EVENTS_SCHEMA",
    "HOTSPOT_PREFIX",
    "HotspotEntry",
    "JsonlEventSink",
    "LiveAggregator",
    "MemoryEventSink",
    "MemoryTracker",
    "merge_snapshots",
    "MetricsSnapshot",
    "PEAK_GAUGE_PATTERN",
    "ProgressSink",
    "prometheus_text",
    "read_events",
    "Recorder",
    "render_events_summary",
    "render_hotspots",
    "render_metrics",
    "render_spans",
    "RunEventLog",
    "set_gauge",
    "Span",
    "span",
    "snapshot_to_json",
    "summarize_events",
    "TelemetryServer",
    "top_hotspots",
    "trace_from_events",
    "track_memory",
    "use",
    "write_json",
    "write_trace",
]
