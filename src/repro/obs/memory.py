"""tracemalloc-backed memory gauges, per stage and per app.

Enabled by ``--memory``: the worker process starts :mod:`tracemalloc`
around its task and attaches a :class:`MemoryTracker` to the task's
recorder.  Every span then records a ``*.peak_*`` gauge with the peak
traced allocation inside its own window:

* ``mem.app.peak_kb`` -- the ``app:<name>`` task root (one per app);
* ``mem.stage.<span>.peak_kb`` -- each pipeline stage span
  (``lowering``, ``modeling``, ``detection``, ``pointsto``, ...).

Nested spans are handled by resetting tracemalloc's peak at every span
boundary and propagating a child's observed peak into its parent's
running maximum, so a parent's gauge is the true high-water mark of its
whole window, not just of the tail after its last child.  (On
interpreters without ``tracemalloc.reset_peak`` -- Python < 3.9 -- the
per-stage windows degrade to "peak so far", which is still an upper
bound; the per-app gauge is exact either way.)

The gauges ride the ordinary metrics snapshot: they cross the worker
pool inside the ``{"data", "obs"}`` cache envelope and replay on cache
hits like span durations do.  They are measurements, not work counters:
``merge_snapshots`` combines same-named ``*.peak_*`` gauges max-wins
(see :mod:`repro.obs.metrics`), and ``bench --compare`` never gates on
them.
"""

from __future__ import annotations

import tracemalloc
from contextlib import contextmanager
from typing import Iterator, List

_HAS_RESET_PEAK = hasattr(tracemalloc, "reset_peak")


def gauge_name_for_span(span_name: str) -> str:
    """The gauge a span's peak lands in (task roots map to ``app``)."""
    if span_name.startswith("app:"):
        return "mem.app.peak_kb"
    return f"mem.stage.{span_name}.peak_kb"


class MemoryTracker:
    """Attach per-span peak-memory gauges to a recorder.

    The tracker assumes tracemalloc is tracing while spans run (see
    :func:`track_memory`); with tracing off its callbacks are no-ops, so
    an installed tracker never breaks an uninstrumented run.
    """

    def __init__(self, recorder) -> None:
        self.recorder = recorder
        #: running peak (bytes) per open span, innermost last
        self._stack: List[float] = []
        recorder.on_span_start.append(self._on_start)
        recorder.on_span_end.append(self._on_end)

    def _on_start(self, span) -> None:
        if not tracemalloc.is_tracing():
            return
        peak = tracemalloc.get_traced_memory()[1]
        if self._stack:
            self._stack[-1] = max(self._stack[-1], peak)
        self._stack.append(0.0)
        if _HAS_RESET_PEAK:
            tracemalloc.reset_peak()

    def _on_end(self, span) -> None:
        if not tracemalloc.is_tracing() or not self._stack:
            return
        peak = max(self._stack.pop(), tracemalloc.get_traced_memory()[1])
        self.recorder.max_gauge(gauge_name_for_span(span.name),
                                peak / 1024.0)
        if self._stack:
            self._stack[-1] = max(self._stack[-1], peak)
        if _HAS_RESET_PEAK:
            tracemalloc.reset_peak()


@contextmanager
def track_memory(recorder) -> Iterator[MemoryTracker]:
    """Trace allocations for the duration of the block.

    Starts tracemalloc (unless an outer scope already did -- then the
    outer owner keeps it) and installs a :class:`MemoryTracker` on
    ``recorder``, so every span entered inside the block records its
    peak gauge.
    """
    tracker = MemoryTracker(recorder)
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    try:
        yield tracker
    finally:
        if started_here:
            tracemalloc.stop()
