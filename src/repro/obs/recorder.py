"""Span-based tracing and metric recording.

A :class:`Span` is one timed region; spans nest into a tree per
:class:`Recorder`.  The module-level :func:`span`/:func:`add`/
:func:`set_gauge` helpers talk to the recorder installed by :func:`use`
(a :class:`contextvars.ContextVar`, so worker threads and nested
analyses cannot corrupt each other's trees).  With no recorder
installed, :func:`span` still times itself -- the pipeline's stage
timings do not depend on instrumentation being active -- while counter
and gauge updates become no-ops.

Profiling: a recorder built with ``profile_stages={"pointsto", ...}``
attaches a cProfile capture to matching spans (outermost-wins, since
cProfile cannot nest) and stores the top functions in
``span.attrs["profile"]``.  Arbitrary ``on_span_end`` callbacks fire for
every closed span, which is the hook surface for custom sinks.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

_SENTINEL = -1.0


class Span:
    """One timed region of the pipeline: a node in the trace tree."""

    __slots__ = ("name", "attrs", "children", "wall_start", "duration",
                 "_t0")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.children: List[Span] = []
        #: absolute wall-clock start (``time.time``); never serialized,
        #: so exported snapshots stay comparable across runs
        self.wall_start = 0.0
        #: monotonic duration in seconds (``time.perf_counter`` delta)
        self.duration = _SENTINEL
        self._t0 = 0.0

    def begin(self) -> None:
        self.wall_start = time.time()
        self._t0 = time.perf_counter()

    def end(self) -> None:
        self.duration = time.perf_counter() - self._t0

    @property
    def closed(self) -> bool:
        return self.duration != _SENTINEL

    def walk(self) -> Iterator["Span"]:
        """Depth-first traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        """JSON view: name, monotonic duration, attrs, children.

        Absolute timestamps are deliberately omitted so two exports of
        the same analysis differ only in ``duration_s`` values.
        """
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration if self.closed else None,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(data["name"], data.get("attrs"))
        if data.get("duration_s") is not None:
            span.duration = data["duration_s"]
        span.children = [cls.from_dict(c) for c in data.get("children", ())]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration:.6f}s, " \
               f"{len(self.children)} children)"


class Recorder:
    """Collects one analysis' spans, counters, and gauges."""

    def __init__(self, profile_stages: Iterable[str] = (),
                 profile_top: int = 15) -> None:
        self.roots: List[Span] = []
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        #: callbacks fired with each span right after it begins
        self.on_span_start: List[Callable[[Span], None]] = []
        #: callbacks fired with each span as it closes
        self.on_span_end: List[Callable[[Span], None]] = []
        self.profile_stages = frozenset(profile_stages)
        self.profile_top = profile_top
        self._stack: List[Span] = []
        self._profiling = False

    # -- spans ---------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        node = Span(name, attrs)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(node)
        self._stack.append(node)
        profiler = None
        if name in self.profile_stages and not self._profiling:
            import cProfile

            profiler = cProfile.Profile()
            self._profiling = True
            profiler.enable()
        node.begin()
        for callback in self.on_span_start:
            callback(node)
        try:
            yield node
        finally:
            node.end()
            if profiler is not None:
                profiler.disable()
                self._profiling = False
                node.attrs["profile"] = _top_functions(
                    profiler, self.profile_top
                )
            self._stack.pop()
            for callback in self.on_span_end:
                callback(node)

    # -- metrics -------------------------------------------------------------

    def add(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def max_gauge(self, name: str, value: float) -> None:
        """Set a gauge to the max of its current value and ``value`` --
        the right update for ``*.peak_*`` high-water-mark gauges."""
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def add_gauge(self, name: str, delta: float) -> None:
        """Accumulate a float gauge -- the right update for cumulative
        measurements like per-rule join seconds."""
        self.gauges[name] = self.gauges.get(name, 0.0) + delta

    def snapshot(self) -> "MetricsSnapshot":
        from .metrics import MetricsSnapshot

        return MetricsSnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            spans=[root.to_dict() for root in self.roots],
        )


def _top_functions(profiler, limit: int) -> str:
    import io
    import pstats

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(limit)
    return buf.getvalue()


# -- module-level current-recorder API ---------------------------------------

_current: contextvars.ContextVar[Optional[Recorder]] = \
    contextvars.ContextVar("repro_obs_recorder", default=None)


def current() -> Optional[Recorder]:
    """The recorder installed by the innermost :func:`use`, if any."""
    return _current.get()


@contextmanager
def use(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` as the target of :func:`span`/:func:`add`."""
    token = _current.set(recorder)
    try:
        yield recorder
    finally:
        _current.reset(token)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span]:
    """Time a region; recorded into the current recorder when present.

    Without a recorder the span still measures its duration (callers
    like ``analyze_module`` read it for ``AnalysisResult`` timings), it
    just does not land in any trace tree.
    """
    recorder = _current.get()
    if recorder is not None:
        with recorder.span(name, **attrs) as node:
            yield node
        return
    node = Span(name, attrs)
    node.begin()
    try:
        yield node
    finally:
        node.end()


def add(name: str, value: int = 1) -> None:
    """Increment a counter on the current recorder (no-op without one)."""
    recorder = _current.get()
    if recorder is not None:
        recorder.add(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the current recorder (no-op without one)."""
    recorder = _current.get()
    if recorder is not None:
        recorder.set_gauge(name, value)


def add_gauge(name: str, delta: float) -> None:
    """Accumulate a float gauge on the current recorder (no-op without
    one).  Used for cumulative measurements such as hotspot seconds."""
    recorder = _current.get()
    if recorder is not None:
        recorder.add_gauge(name, delta)
