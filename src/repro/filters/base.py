"""Filter framework: context object and base class (paper section 6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..analysis.lockset import LocksetAnalysis
from ..analysis.pointsto import PointsToResult
from ..ir import Method, Module
from ..race.warnings import Occurrence, UafWarning
from ..threadify.model import ThreadNode
from ..threadify.transform import ThreadifiedProgram
from .guards import AllocAnalysis, GuardAnalysis


@dataclass
class FilterOptions:
    """Pipeline configuration.

    ``assume_single_looper`` is the section-8.1 assumption: every component
    has exactly one looper thread, making callbacks mutually atomic.  When
    False, the IG and IA filters lose their atomicity premise for
    callback-callback pairs and fall back to requiring a common lock
    (downgrading them to unsound, as the paper notes).

    ``sound_only`` restricts the pipeline to the section-6.1 sound filters
    (MHB, IG, IA); the unsound filters of section 6.2 are skipped, so no
    occurrence is ever downgraded.  This is the paper's
    no-false-negatives configuration.
    """

    assume_single_looper: bool = True
    sound_only: bool = False


class FilterContext:
    """Shared state and per-method analysis caches for all filters."""

    def __init__(
        self,
        program: ThreadifiedProgram,
        pointsto: PointsToResult,
        lockset: LocksetAnalysis,
        options: Optional[FilterOptions] = None,
    ) -> None:
        self.program = program
        self.module: Module = program.module
        self.pointsto = pointsto
        self.lockset = lockset
        self.options = options or FilterOptions()
        self._guards: Dict[str, GuardAnalysis] = {}
        self._allocs: Dict[str, AllocAnalysis] = {}

    # -- per-method caches -------------------------------------------------------

    def _method(self, qname: str) -> Method:
        class_name, method_name = qname.rsplit(".", 1)
        method = self.module.lookup_method(class_name, method_name)
        assert method is not None
        return method

    def guards(self, method_qname: str) -> GuardAnalysis:
        if method_qname not in self._guards:
            self._guards[method_qname] = GuardAnalysis(
                self.module, self._method(method_qname)
            )
        return self._guards[method_qname]

    def allocs(self, method_qname: str) -> AllocAnalysis:
        if method_qname not in self._allocs:
            self._allocs[method_qname] = AllocAnalysis(
                self.module, self._method(method_qname)
            )
        return self._allocs[method_qname]

    # -- shared helpers ---------------------------------------------------------

    def nodes_of(self, occ: Occurrence) -> Tuple[ThreadNode, ThreadNode]:
        forest = self.program.forest
        return forest.node(occ.use.node_id), forest.node(occ.free.node_id)

    def atomic_with_respect_to(self, occ: Occurrence) -> bool:
        """Is the use's callback atomic w.r.t. the free (no interleaving)?

        True for two callbacks on the same looper (section 2.1 atomicity,
        under the single-looper assumption), or when both accesses hold a
        common lock.
        """
        use_node, free_node = self.nodes_of(occ)
        if (
            self.options.assume_single_looper
            and self.program.forest.same_looper(use_node, free_node)
        ):
            return True
        return self.lockset.common_lock(occ.use.uid, occ.free.uid)

    def component_kind(self, component: Optional[str]) -> Optional[str]:
        if component is None:
            return None
        decl = self.program.manifest.component(component)
        return decl.kind if decl is not None else None


class Filter:
    """One pruning rule.  ``prunes`` must be side-effect free."""

    name: str = "base"
    sound: bool = True

    def prunes(self, occ: Occurrence, warning: UafWarning,
               ctx: FilterContext) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError
