"""Filter framework: context object and base class (paper section 6).

Every filter justifies its decisions: :meth:`Filter.witness` returns a
:class:`repro.race.warnings.Witness` naming *why* an occurrence is pruned
(the HB edge, the common lock, the allocation site, ...), and
:meth:`Filter.prunes` is derived from it, so a prune can never happen
without a recordable reason.  The pipeline attaches the witness to the
occurrence; reports render it as the per-occurrence decision trail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..analysis.lockset import LocksetAnalysis
from ..analysis.pointsto import PointsToResult
from ..ir import Method, Module
from ..race.warnings import Occurrence, UafWarning, Witness
from ..threadify.model import ThreadNode
from ..threadify.transform import ThreadifiedProgram
from .guards import AllocAnalysis, GuardAnalysis


@dataclass
class FilterOptions:
    """Pipeline configuration.

    ``assume_single_looper`` is the section-8.1 assumption: every component
    has exactly one looper thread, making callbacks mutually atomic.  When
    False, the IG and IA filters lose their atomicity premise for
    callback-callback pairs and fall back to requiring a common lock
    (downgrading them to unsound, as the paper notes).

    ``sound_only`` restricts the pipeline to the section-6.1 sound filters
    (MHB, IG, IA); the unsound filters of section 6.2 are skipped, so no
    occurrence is ever downgraded.  This is the paper's
    no-false-negatives configuration.
    """

    assume_single_looper: bool = True
    sound_only: bool = False


class FilterContext:
    """Shared state and per-method analysis caches for all filters."""

    def __init__(
        self,
        program: ThreadifiedProgram,
        pointsto: PointsToResult,
        lockset: LocksetAnalysis,
        options: Optional[FilterOptions] = None,
    ) -> None:
        self.program = program
        self.module: Module = program.module
        self.pointsto = pointsto
        self.lockset = lockset
        self.options = options or FilterOptions()
        self._guards: Dict[str, GuardAnalysis] = {}
        self._allocs: Dict[str, AllocAnalysis] = {}

    # -- per-method caches -------------------------------------------------------

    def _method(self, qname: str) -> Method:
        class_name, method_name = qname.rsplit(".", 1)
        method = self.module.lookup_method(class_name, method_name)
        assert method is not None
        return method

    def guards(self, method_qname: str) -> GuardAnalysis:
        if method_qname not in self._guards:
            self._guards[method_qname] = GuardAnalysis(
                self.module, self._method(method_qname)
            )
        return self._guards[method_qname]

    def allocs(self, method_qname: str) -> AllocAnalysis:
        if method_qname not in self._allocs:
            self._allocs[method_qname] = AllocAnalysis(
                self.module, self._method(method_qname)
            )
        return self._allocs[method_qname]

    # -- shared helpers ---------------------------------------------------------

    def nodes_of(self, occ: Occurrence) -> Tuple[ThreadNode, ThreadNode]:
        forest = self.program.forest
        return forest.node(occ.use.node_id), forest.node(occ.free.node_id)

    def atomic_with_respect_to(self, occ: Occurrence) -> bool:
        """Is the use's callback atomic w.r.t. the free (no interleaving)?

        True for two callbacks on the same looper (section 2.1 atomicity,
        under the single-looper assumption), or when both accesses hold a
        common lock.
        """
        return self.atomicity_witness(occ) is not None

    def atomicity_witness(self, occ: Occurrence) -> Optional[Dict[str, Any]]:
        """The reason the use is atomic w.r.t. the free, when one exists.

        ``{"kind": "same-looper", "looper": ...}`` under the
        single-looper assumption, or ``{"kind": "common-lock",
        "lock": <abstract lock object>}`` when a singleton lock is
        must-held at both accesses.
        """
        use_node, free_node = self.nodes_of(occ)
        if (
            self.options.assume_single_looper
            and self.program.forest.same_looper(use_node, free_node)
        ):
            return {"kind": "same-looper", "looper": use_node.looper}
        lock = self.lockset.common_lock_witness(occ.use.uid, occ.free.uid)
        if lock is not None:
            return {"kind": "common-lock", "lock": list(lock)}
        return None

    def component_kind(self, component: Optional[str]) -> Optional[str]:
        if component is None:
            return None
        decl = self.program.manifest.component(component)
        return decl.kind if decl is not None else None


class Filter:
    """One pruning rule.

    Subclasses implement :meth:`witness`, which must be side-effect free:
    return the :class:`Witness` justifying the prune, or ``None`` when the
    occurrence stays.  ``prunes`` is the boolean view the Figure 5
    individual-application counters use.
    """

    name: str = "base"
    sound: bool = True

    def witness(self, occ: Occurrence, warning: UafWarning,
                ctx: FilterContext) -> Optional[Witness]:
        if type(self).prunes is not Filter.prunes:
            # Legacy subclass implementing only the boolean ``prunes``
            # (e.g. user extensions): wrap its verdict generically so the
            # decision trail never loses a prune.
            if self.prunes(occ, warning, ctx):
                return Witness(kind="filter",
                               detail=f"pruned by custom filter {self.name}")
            return None
        raise NotImplementedError(
            f"{type(self).__name__} implements neither witness() nor prunes()"
        )

    def prunes(self, occ: Occurrence, warning: UafWarning,
               ctx: FilterContext) -> bool:
        return self.witness(occ, warning, ctx) is not None
