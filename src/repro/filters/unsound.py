"""Unsound filters (paper section 6.2): RHB, CHB, PHB, MA, UR, TT.

These encode likely-true may-happens-before relations and common Android
idioms learned from the training applications.  They are applied after the
sound filters; pruned warnings are *downgraded* rather than deleted, so a
soundness-demanding user can still review them (section 6.2's ranking
interpretation).
"""

from __future__ import annotations

from typing import Set

from ..android.api import ApiKind, CANCEL_KINDS
from ..android.callbacks import CallbackCategory
from ..ir import Const, Local, PutField
from ..race.warnings import Occurrence, UafWarning
from ..threadify.model import ThreadNode
from ..threadify.resolve import resolve_local_classes
from .base import Filter, FilterContext
from .guards import use_is_benign

_UI_LIKE = (CallbackCategory.UI, CallbackCategory.SYSTEM)


class ResumeHappensBeforeFilter(Filter):
    """RHB (6.2.1): a UI callback's use is assumed safe against onPause's
    free when onResume (may-)reallocates the field -- the "restore
    invariants on resume" idiom of Figure 4(d)."""

    name = "RHB"
    sound = False

    def prunes(self, occ: Occurrence, warning: UafWarning,
               ctx: FilterContext) -> bool:
        use_node, free_node = ctx.nodes_of(occ)
        if free_node.method_name != "onPause":
            return False
        if use_node.category not in _UI_LIKE:
            return False
        component = free_node.component
        if component is None or use_node.component != component:
            return False
        on_resume = ctx.module.resolve_method(component, "onResume")
        if on_resume is None or not on_resume.cfg.blocks:
            return False
        field = occ.use.fieldref
        for instr in on_resume.instructions():
            if not isinstance(instr, PutField):
                continue
            resolved = ctx.module.resolve_field(
                instr.fieldref.class_name, instr.fieldref.field_name
            ) or instr.fieldref
            if (resolved.class_name, resolved.field_name) != (
                field.class_name, field.field_name,
            ):
                continue
            if not (isinstance(instr.value, Const) and instr.value.is_null()):
                return True  # may-allocation on some path: assume safe
        return False


class CancelHappensBeforeFilter(Filter):
    """CHB (6.2.1): when the free's callback (may-)invokes a cancellation
    API that stops the use's callback from ever running afterwards, the
    free-then-use order cannot occur (Figure 4(e))."""

    name = "CHB"
    sound = False

    def _cancel_kinds_in_region(self, ctx: FilterContext,
                                node: ThreadNode) -> Set[ApiKind]:
        region = ctx.program.regions.get(node.node_id, set())
        kinds: Set[ApiKind] = set()
        for site in ctx.program.api_sites.values():
            if site.spec.kind in CANCEL_KINDS \
                    and site.qualified_caller in region:
                kinds.add(site.spec.kind)
        return kinds

    def prunes(self, occ: Occurrence, warning: UafWarning,
               ctx: FilterContext) -> bool:
        use_node, free_node = ctx.nodes_of(occ)
        if not use_node.is_callback:
            return False  # cancellation cannot stop a running native thread
        kinds = self._cancel_kinds_in_region(ctx, free_node)
        if not kinds:
            return False
        category = use_node.category
        finish_cancellable = category in _UI_LIKE or (
            category is CallbackCategory.LIFECYCLE
            # after finish() the activity only walks the teardown path;
            # the (re)start-side callbacks can no longer fire
            and use_node.method_name in (
                "onCreate", "onStart", "onRestart", "onResume",
            )
        )
        if ApiKind.CANCEL_FINISH in kinds and finish_cancellable:
            # finish() stops UI/system callbacks of the same activity.
            if (
                use_node.component is not None
                and use_node.component == free_node.component
            ):
                return True
        if ApiKind.CANCEL_UNBIND in kinds \
                and category is CallbackCategory.SERVICE_CONN:
            return True
        if ApiKind.CANCEL_UNREGISTER in kinds and category in (
            CallbackCategory.RECEIVER, CallbackCategory.UI,
            CallbackCategory.SYSTEM,
        ):
            if category is CallbackCategory.RECEIVER:
                return True
            # removeUpdates / unregisterListener: match the listener class.
            if self._unregisters_class(ctx, free_node, use_node.receiver_class):
                return True
        if ApiKind.CANCEL_REMOVE_POSTS in kinds and category in (
            CallbackCategory.POSTED_RUNNABLE, CallbackCategory.HANDLER_MESSAGE,
        ):
            return True
        if ApiKind.CANCEL_ASYNCTASK in kinds and category in (
            CallbackCategory.ASYNC_PRE, CallbackCategory.ASYNC_PROGRESS,
            CallbackCategory.ASYNC_POST,
        ):
            return True
        return False

    def _unregisters_class(self, ctx: FilterContext, free_node: ThreadNode,
                           listener_class: str) -> bool:
        region = ctx.program.regions.get(free_node.node_id, set())
        from ..analysis.callgraph import instantiated_classes

        rta = instantiated_classes(ctx.module)
        for site in ctx.program.api_sites.values():
            if site.spec.kind is not ApiKind.CANCEL_UNREGISTER:
                continue
            if site.qualified_caller not in region:
                continue
            if site.spec.callback_arg is None:
                return True
            arg = site.invoke.args[site.spec.callback_arg]
            if not isinstance(arg, Local):
                continue
            classes = resolve_local_classes(ctx.module, site.method, arg, rta)
            if not classes or listener_class in classes:
                return True
        return False


class PostHappensBeforeFilter(Filter):
    """PHB (6.2.1): a poster and its postee on the same looper are ordered
    (the callback completes before its posted event runs), so a pair along
    a post chain is not a race -- unsound when one UI callback instance
    re-fires (Figure 4(f))."""

    name = "PHB"
    sound = False

    def prunes(self, occ: Occurrence, warning: UafWarning,
               ctx: FilterContext) -> bool:
        use_node, free_node = ctx.nodes_of(occ)
        if not ctx.program.forest.same_looper(use_node, free_node):
            return False
        return free_node in use_node.ancestors() \
            or use_node in free_node.ancestors()


class MaybeAllocationFilter(Filter):
    """MA (6.2.2): like IA, but accepts getter-call results on the
    assumption that custom getters never return null (Figure 4(a))."""

    name = "MA"
    sound = False

    def prunes(self, occ: Occurrence, warning: UafWarning,
               ctx: FilterContext) -> bool:
        use = occ.use
        if use.base_local is None:
            return False
        allocs = ctx.allocs(use.method_qname)
        if not allocs.allocated_at(
            use.uid, use.base_local,
            use.fieldref.class_name, use.fieldref.field_name,
            allow_calls=True,
        ):
            return False
        return ctx.atomic_with_respect_to(occ)


class UsedForReturnFilter(Filter):
    """UR (6.2.3): prune uses whose value is only returned, passed as an
    argument, or null-compared -- never locally dereferenced."""

    name = "UR"
    sound = False

    def prunes(self, occ: Occurrence, warning: UafWarning,
               ctx: FilterContext) -> bool:
        use = occ.use
        class_name, method_name = use.method_qname.rsplit(".", 1)
        method = ctx.module.lookup_method(class_name, method_name)
        if method is None:
            return False
        return use_is_benign(ctx.module, method, use.uid)


class ThreadThreadFilter(Filter):
    """TT (6.2.4): races purely between native threads are the classic,
    well-studied kind; nAdroid focuses on pairs involving a looper."""

    name = "TT"
    sound = False

    def prunes(self, occ: Occurrence, warning: UafWarning,
               ctx: FilterContext) -> bool:
        use_node, free_node = ctx.nodes_of(occ)
        return use_node.is_native and free_node.is_native


UNSOUND_FILTERS = (
    ResumeHappensBeforeFilter(),
    CancelHappensBeforeFilter(),
    PostHappensBeforeFilter(),
    MaybeAllocationFilter(),
    UsedForReturnFilter(),
    ThreadThreadFilter(),
)

#: The paper groups RHB+CHB+PHB as "mayHB" in Figure 5(b).
MAYHB_FILTER_NAMES = ("RHB", "CHB", "PHB")
