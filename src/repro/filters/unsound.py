"""Unsound filters (paper section 6.2): RHB, CHB, PHB, MA, UR, TT.

These encode likely-true may-happens-before relations and common Android
idioms learned from the training applications.  They are applied after the
sound filters; pruned warnings are *downgraded* rather than deleted, so a
soundness-demanding user can still review them (section 6.2's ranking
interpretation).
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..android.api import ApiKind, CANCEL_KINDS
from ..android.callbacks import CallbackCategory
from ..ir import Const, Local, PutField
from ..race.warnings import Occurrence, UafWarning, Witness
from ..threadify.model import ThreadNode
from ..threadify.resolve import resolve_local_classes
from .base import Filter, FilterContext
from .guards import use_is_benign

_UI_LIKE = (CallbackCategory.UI, CallbackCategory.SYSTEM)


class ResumeHappensBeforeFilter(Filter):
    """RHB (6.2.1): a UI callback's use is assumed safe against onPause's
    free when onResume (may-)reallocates the field -- the "restore
    invariants on resume" idiom of Figure 4(d)."""

    name = "RHB"
    sound = False

    def witness(self, occ: Occurrence, warning: UafWarning,
                ctx: FilterContext) -> Optional[Witness]:
        use_node, free_node = ctx.nodes_of(occ)
        if free_node.method_name != "onPause":
            return None
        if use_node.category not in _UI_LIKE:
            return None
        component = free_node.component
        if component is None or use_node.component != component:
            return None
        on_resume = ctx.module.resolve_method(component, "onResume")
        if on_resume is None or not on_resume.cfg.blocks:
            return None
        field = occ.use.fieldref
        for instr in on_resume.instructions():
            if not isinstance(instr, PutField):
                continue
            resolved = ctx.module.resolve_field(
                instr.fieldref.class_name, instr.fieldref.field_name
            ) or instr.fieldref
            if (resolved.class_name, resolved.field_name) != (
                field.class_name, field.field_name,
            ):
                continue
            if not (isinstance(instr.value, Const) and instr.value.is_null()):
                # may-allocation on some path: assume safe
                qname = on_resume.qualified_name
                return Witness(
                    kind="resume-hb",
                    detail=(f"{qname} (line {instr.line}) may reallocate "
                            f"{field.class_name}.{field.field_name} before "
                            "the UI callback re-fires"),
                    data={"edge": "Resume-HB",
                          "reallocation_method": qname,
                          "reallocation_line": instr.line,
                          "component": component},
                )
        return None


class CancelHappensBeforeFilter(Filter):
    """CHB (6.2.1): when the free's callback (may-)invokes a cancellation
    API that stops the use's callback from ever running afterwards, the
    free-then-use order cannot occur (Figure 4(e))."""

    name = "CHB"
    sound = False

    def _cancel_sites_in_region(self, ctx: FilterContext,
                                node: ThreadNode) -> List:
        region = ctx.program.regions.get(node.node_id, set())
        return [
            site for _, site in sorted(ctx.program.api_sites.items())
            if site.spec.kind in CANCEL_KINDS
            and site.qualified_caller in region
        ]

    @staticmethod
    def _witness_for(kind: ApiKind, sites, use_node: ThreadNode,
                     stops: str) -> Witness:
        site = next(s for s in sites if s.spec.kind is kind)
        callback = f"{use_node.receiver_class}.{use_node.method_name}"
        return Witness(
            kind="cancel-hb",
            detail=(f"{kind.name.lower()} call in "
                    f"{site.qualified_caller} (line {site.invoke.line}) "
                    f"stops {stops}, so {callback} cannot run afterwards"),
            data={"edge": "Cancel-HB", "api": kind.name,
                  "cancel_site": site.qualified_caller,
                  "cancel_line": site.invoke.line,
                  "cancelled_callback": callback},
        )

    def witness(self, occ: Occurrence, warning: UafWarning,
                ctx: FilterContext) -> Optional[Witness]:
        use_node, free_node = ctx.nodes_of(occ)
        if not use_node.is_callback:
            return None  # cancellation cannot stop a running native thread
        sites = self._cancel_sites_in_region(ctx, free_node)
        kinds = {site.spec.kind for site in sites}
        if not kinds:
            return None
        category = use_node.category
        finish_cancellable = category in _UI_LIKE or (
            category is CallbackCategory.LIFECYCLE
            # after finish() the activity only walks the teardown path;
            # the (re)start-side callbacks can no longer fire
            and use_node.method_name in (
                "onCreate", "onStart", "onRestart", "onResume",
            )
        )
        if ApiKind.CANCEL_FINISH in kinds and finish_cancellable:
            # finish() stops UI/system callbacks of the same activity.
            if (
                use_node.component is not None
                and use_node.component == free_node.component
            ):
                return self._witness_for(
                    ApiKind.CANCEL_FINISH, sites, use_node,
                    f"the {use_node.component} activity's callbacks",
                )
        if ApiKind.CANCEL_UNBIND in kinds \
                and category is CallbackCategory.SERVICE_CONN:
            return self._witness_for(ApiKind.CANCEL_UNBIND, sites, use_node,
                                     "the service connection")
        if ApiKind.CANCEL_UNREGISTER in kinds and category in (
            CallbackCategory.RECEIVER, CallbackCategory.UI,
            CallbackCategory.SYSTEM,
        ):
            if category is CallbackCategory.RECEIVER:
                return self._witness_for(
                    ApiKind.CANCEL_UNREGISTER, sites, use_node,
                    "the broadcast receiver",
                )
            # removeUpdates / unregisterListener: match the listener class.
            if self._unregisters_class(ctx, free_node, use_node.receiver_class):
                return self._witness_for(
                    ApiKind.CANCEL_UNREGISTER, sites, use_node,
                    f"the {use_node.receiver_class} listener",
                )
        if ApiKind.CANCEL_REMOVE_POSTS in kinds and category in (
            CallbackCategory.POSTED_RUNNABLE, CallbackCategory.HANDLER_MESSAGE,
        ):
            return self._witness_for(
                ApiKind.CANCEL_REMOVE_POSTS, sites, use_node,
                "pending posts on the handler",
            )
        if ApiKind.CANCEL_ASYNCTASK in kinds and category in (
            CallbackCategory.ASYNC_PRE, CallbackCategory.ASYNC_PROGRESS,
            CallbackCategory.ASYNC_POST,
        ):
            return self._witness_for(
                ApiKind.CANCEL_ASYNCTASK, sites, use_node,
                "the AsyncTask's remaining callbacks",
            )
        return None

    def _unregisters_class(self, ctx: FilterContext, free_node: ThreadNode,
                           listener_class: str) -> bool:
        region = ctx.program.regions.get(free_node.node_id, set())
        from ..analysis.callgraph import instantiated_classes

        rta = instantiated_classes(ctx.module)
        for site in ctx.program.api_sites.values():
            if site.spec.kind is not ApiKind.CANCEL_UNREGISTER:
                continue
            if site.qualified_caller not in region:
                continue
            if site.spec.callback_arg is None:
                return True
            arg = site.invoke.args[site.spec.callback_arg]
            if not isinstance(arg, Local):
                continue
            classes = resolve_local_classes(ctx.module, site.method, arg, rta)
            if not classes or listener_class in classes:
                return True
        return False


class PostHappensBeforeFilter(Filter):
    """PHB (6.2.1): a poster and its postee on the same looper are ordered
    (the callback completes before its posted event runs), so a pair along
    a post chain is not a race -- unsound when one UI callback instance
    re-fires (Figure 4(f))."""

    name = "PHB"
    sound = False

    def witness(self, occ: Occurrence, warning: UafWarning,
                ctx: FilterContext) -> Optional[Witness]:
        use_node, free_node = ctx.nodes_of(occ)
        if not ctx.program.forest.same_looper(use_node, free_node):
            return None
        if free_node in use_node.ancestors():
            poster, postee = free_node, use_node
        elif use_node in free_node.ancestors():
            poster, postee = use_node, free_node
        else:
            return None
        return Witness(
            kind="post-hb",
            detail=(f"{poster.receiver_class}.{poster.method_name} posts "
                    f"{postee.receiver_class}.{postee.method_name} on the "
                    f"{use_node.looper!r} looper: the poster completes "
                    "before its postee runs"),
            data={"edge": "Post-HB",
                  "poster": f"{poster.receiver_class}.{poster.method_name}",
                  "postee": f"{postee.receiver_class}.{postee.method_name}",
                  "poster_node": poster.node_id,
                  "postee_node": postee.node_id,
                  "post_site": postee.post_site,
                  "looper": use_node.looper},
        )


class MaybeAllocationFilter(Filter):
    """MA (6.2.2): like IA, but accepts getter-call results on the
    assumption that custom getters never return null (Figure 4(a))."""

    name = "MA"
    sound = False

    def witness(self, occ: Occurrence, warning: UafWarning,
                ctx: FilterContext) -> Optional[Witness]:
        use = occ.use
        if use.base_local is None:
            return None
        allocs = ctx.allocs(use.method_qname)
        found = allocs.allocation_witness(
            use.uid, use.base_local,
            use.fieldref.class_name, use.fieldref.field_name,
            allow_calls=True,
        )
        if found is None:
            return None
        atomicity = ctx.atomicity_witness(occ)
        if atomicity is None:
            return None
        source, sites = found
        field = f"{use.fieldref.class_name}.{use.fieldref.field_name}"
        origin = "a fresh `new`" if source == "new" \
            else "a getter result (assumed non-null)"
        lines = ", ".join(str(s["line"]) for s in sites) or "?"
        return Witness(
            kind="allocation",
            detail=(f"{field} holds {origin} stored at line(s) {lines} "
                    f"before the use at line {use.line}"),
            data={"source": source, "field": field, "use_line": use.line,
                  "store_sites": sites, "atomicity": atomicity},
        )


class UsedForReturnFilter(Filter):
    """UR (6.2.3): prune uses whose value is only returned, passed as an
    argument, or null-compared -- never locally dereferenced."""

    name = "UR"
    sound = False

    def witness(self, occ: Occurrence, warning: UafWarning,
                ctx: FilterContext) -> Optional[Witness]:
        use = occ.use
        class_name, method_name = use.method_qname.rsplit(".", 1)
        method = ctx.module.lookup_method(class_name, method_name)
        if method is None:
            return None
        if not use_is_benign(ctx.module, method, use.uid):
            return None
        field = f"{use.fieldref.class_name}.{use.fieldref.field_name}"
        return Witness(
            kind="return-use",
            detail=(f"value read from {field} at line {use.line} in "
                    f"{use.method_qname} is only returned, passed as an "
                    "argument or null-compared -- never dereferenced"),
            data={"field": field, "use_method": use.method_qname,
                  "use_line": use.line, "use_uid": use.uid},
        )


class ThreadThreadFilter(Filter):
    """TT (6.2.4): races purely between native threads are the classic,
    well-studied kind; nAdroid focuses on pairs involving a looper."""

    name = "TT"
    sound = False

    def witness(self, occ: Occurrence, warning: UafWarning,
                ctx: FilterContext) -> Optional[Witness]:
        use_node, free_node = ctx.nodes_of(occ)
        if not (use_node.is_native and free_node.is_native):
            return None
        return Witness(
            kind="thread-thread",
            detail=(f"both sides run on native threads "
                    f"({use_node.receiver_class}.{use_node.method_name} vs "
                    f"{free_node.receiver_class}.{free_node.method_name}); "
                    "no looper is involved"),
            data={"use_thread":
                  f"{use_node.receiver_class}.{use_node.method_name}",
                  "free_thread":
                  f"{free_node.receiver_class}.{free_node.method_name}",
                  "use_node": use_node.node_id,
                  "free_node": free_node.node_id},
        )


UNSOUND_FILTERS = (
    ResumeHappensBeforeFilter(),
    CancelHappensBeforeFilter(),
    PostHappensBeforeFilter(),
    MaybeAllocationFilter(),
    UsedForReturnFilter(),
    ThreadThreadFilter(),
)

#: The paper groups RHB+CHB+PHB as "mayHB" in Figure 5(b).
MAYHB_FILTER_NAMES = ("RHB", "CHB", "PHB")
