"""Intra-procedural support analyses for the IG/IA/MA/UR filters.

* :class:`GuardAnalysis` -- edge-sensitive must-analysis computing, for
  every program point, the set of (base local, field) pairs that are
  null-check-guarded (the ``if (f != null)`` pattern of Figure 4(b)).
* :class:`AllocAnalysis` -- must-analysis computing fields assigned a
  freshly-allocated (``new``, for IA) or getter-returned (for MA) value
  before the program point, per Figure 4(a)/(c).
* :func:`use_is_benign` -- the Used-for-Return check of Figure 4(g): a
  use whose value flows only into returns, call arguments or
  null-comparisons cannot be dereferenced.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..ir import (
    Assign,
    BinaryOp,
    Const,
    GetField,
    GetStatic,
    If,
    Instruction,
    Invoke,
    Local,
    Method,
    Module,
    New,
    PutField,
    PutStatic,
    Return,
)

FieldKey = Tuple[str, str]            # (declaring class, field name)
GuardFact = Tuple[str, str, str]      # (base local, class, field)
GuardState = FrozenSet[GuardFact]


def _field_key(module: Module, fieldref) -> FieldKey:
    resolved = module.resolve_field(fieldref.class_name, fieldref.field_name)
    ref = resolved if resolved is not None else fieldref
    return (ref.class_name, ref.field_name)


class _SymbolicValues:
    """Flow-insensitive symbolic interpretation of a method's temporaries.

    Assigns every local a *canonical access path* (``this``,
    ``this.A$1:$outer``, ...) so that two temporaries loading the same
    field chain compare equal -- the lowering emits a fresh ``$outer``
    temporary per access, and guard/allocation facts must see through
    that.  Locals with conflicting definitions get no path.

    On top of paths, maps locals to ``("field", base_path, cls, name)``
    when they hold a field value and ``("check", base_path, cls, name,
    polarity)`` when they hold a null comparison of such a value.
    """

    _TOP = "<top>"

    def __init__(self, module: Module, method: Method) -> None:
        self.values: Dict[str, Tuple] = {}
        self.paths: Dict[str, str] = {name: name for name in method.param_names()}

        def set_path(local: str, path: Optional[str]) -> bool:
            if path is None:
                path = self._TOP
            current = self.paths.get(local)
            if current is None:
                self.paths[local] = path
                return True
            if current != path and current != self._TOP:
                self.paths[local] = self._TOP
                return True
            return False

        changed = True
        passes = 0
        while changed and passes < 8:
            changed = False
            passes += 1
            for instr in method.instructions():
                target = instr.target_local()
                if target is None:
                    continue
                new_value: Optional[Tuple] = None
                if isinstance(instr, GetField):
                    cls, name = _field_key(module, instr.fieldref)
                    base_path = self.path_of(instr.base.name)
                    if base_path is not None:
                        new_value = ("field", base_path, cls, name)
                        changed |= set_path(target, f"{base_path}.{cls}:{name}")
                    else:
                        changed |= set_path(target, None)
                elif isinstance(instr, GetStatic):
                    cls, name = _field_key(module, instr.fieldref)
                    new_value = ("field", "$static", cls, name)
                    changed |= set_path(target, f"$static.{cls}:{name}")
                elif isinstance(instr, Assign) and isinstance(instr.source, Local):
                    new_value = self.values.get(instr.source.name)
                    changed |= set_path(target, self.paths.get(instr.source.name))
                elif isinstance(instr, BinaryOp) and instr.op in ("==", "!="):
                    operand = None
                    if isinstance(instr.rhs, Const) and instr.rhs.is_null():
                        operand = instr.lhs
                    elif isinstance(instr.lhs, Const) and instr.lhs.is_null():
                        operand = instr.rhs
                    if isinstance(operand, Local):
                        value = self.values.get(operand.name)
                        if value is not None and value[0] == "field":
                            _tag, base, cls, name = value
                            new_value = ("check", base, cls, name, instr.op)
                    changed |= set_path(target, None)
                else:
                    changed |= set_path(target, None)
                if new_value is not None and self.values.get(target) != new_value:
                    self.values[target] = new_value
                    changed = True

    def path_of(self, local: str) -> Optional[str]:
        path = self.paths.get(local)
        if path is None or path == self._TOP:
            return None
        return path

    def field_of(self, local: str) -> Optional[GuardFact]:
        value = self.values.get(local)
        if value is not None and value[0] == "field":
            return (value[1], value[2], value[3])
        return None

    def check_of(self, local: str) -> Optional[Tuple[GuardFact, str]]:
        value = self.values.get(local)
        if value is not None and value[0] == "check":
            return ((value[1], value[2], value[3]), value[4])
        return None


class GuardAnalysis:
    """Null-check-guarded (base, field) facts before every instruction."""

    def __init__(self, module: Module, method: Method) -> None:
        self.module = module
        self.method = method
        self.symbols = _SymbolicValues(module, method)
        self._in_states = self._run()

    def _transfer_instr(self, instr: Instruction, state: GuardState) -> GuardState:
        if isinstance(instr, (PutField, PutStatic)):
            # Any write invalidates prior checks on this field (frees
            # obviously; other writes may store a null-returning value).
            cls, name = _field_key(self.module, instr.fieldref)
            return frozenset(
                f for f in state if not (f[1] == cls and f[2] == name)
            )
        return state

    def _edge_state(self, instr: If, state: GuardState, to_then: bool) -> GuardState:
        if not isinstance(instr.cond, Local):
            return state
        check = self.symbols.check_of(instr.cond.name)
        if check is None:
            return state
        fact, op = check
        # `f != null` guards the then-edge; `f == null` guards the else-edge.
        if (op == "!=" and to_then) or (op == "==" and not to_then):
            return state | {fact}
        return state

    def _run(self) -> Dict[int, GuardState]:
        cfg = self.method.cfg
        if not cfg.blocks:
            return {}
        block_in: Dict[str, Optional[GuardState]] = {
            label: None for label in cfg.blocks
        }
        block_in[cfg.entry_label] = frozenset()
        changed = True
        while changed:
            changed = False
            for block in cfg.reverse_postorder():
                state = block_in[block.label]
                if state is None:
                    continue
                for instr in block.instructions[:-1]:
                    state = self._transfer_instr(instr, state)
                term = block.terminator
                successors = block.successor_labels()
                for i, succ in enumerate(successors):
                    if isinstance(term, If):
                        out = self._edge_state(term, state, to_then=(i == 0))
                    else:
                        out = self._transfer_instr(term, state) if term else state
                    current = block_in.get(succ)
                    merged = out if current is None else (current & out)
                    if merged != current:
                        block_in[succ] = merged
                        changed = True

        result: Dict[int, GuardState] = {}
        for block in cfg.reverse_postorder():
            state = block_in[block.label]
            if state is None:
                continue
            for instr in block.instructions:
                result[instr.uid] = state
                state = self._transfer_instr(instr, state)
        return result

    def guarded_at(self, uid: int, base: str, cls: str, name: str) -> bool:
        canonical = self.symbols.path_of(base) or base
        return (canonical, cls, name) in self._in_states.get(uid, frozenset())

    def use_protected(self, uid: int, base: str, cls: str, name: str) -> bool:
        """Is a field *use* protected by a null check?

        Covers both idioms: the field is re-read after an explicit check
        (``if (f != null) f.use()``), or the read's value is copied to a
        local whose every dereference sits inside the check
        (``F b = f; if (b != null) b.use();``).
        """
        if self.guarded_at(uid, base, cls, name):
            return True
        derefs = deref_consumer_uids(self.method, uid)
        if not derefs:
            return False
        return all(self.guarded_at(d, base, cls, name) for d in derefs)


class AllocAnalysis:
    """Fields that must hold a locally-produced value at each point.

    Facts are ``(base local, class, field, source)`` with source ``"new"``
    (Intra-Allocation, sound modulo atomicity) or ``"call"`` (Maybe-
    Allocation, unsound: assumes getters never return null).
    """

    def __init__(self, module: Module, method: Method) -> None:
        self.module = module
        self.method = method
        self.symbols = _SymbolicValues(module, method)
        self._def_kinds = self._classify_locals()
        self._in_states = self._run()

    def _classify_locals(self) -> Dict[str, Set[str]]:
        kinds: Dict[str, Set[str]] = {}
        changed = True
        passes = 0
        while changed and passes < 8:
            changed = False
            passes += 1
            for instr in self.method.instructions():
                target = instr.target_local()
                if target is None:
                    continue
                slot = kinds.setdefault(target, set())
                before = len(slot)
                if isinstance(instr, New):
                    slot.add("new")
                elif isinstance(instr, Invoke):
                    slot.add("call")
                elif isinstance(instr, Assign):
                    if isinstance(instr.source, Local):
                        slot |= kinds.get(instr.source.name, {"other"})
                    elif not instr.source.is_null():
                        slot.add("other")
                    else:
                        slot.add("null")
                else:
                    slot.add("other")
                if len(slot) != before:
                    changed = True
        return kinds

    def _value_source(self, operand) -> Optional[str]:
        if not isinstance(operand, Local):
            return None
        kinds = self._def_kinds.get(operand.name, set())
        if kinds == {"new"}:
            return "new"
        if kinds and kinds <= {"new", "call"}:
            return "call"
        return None

    def _transfer(self, instr: Instruction, state: FrozenSet) -> FrozenSet:
        if isinstance(instr, PutField):
            cls, name = _field_key(self.module, instr.fieldref)
            state = frozenset(
                f for f in state if not (f[1] == cls and f[2] == name)
            )
            source = self._value_source(instr.value)
            if source is not None:
                base = self.symbols.path_of(instr.base.name) or instr.base.name
                state = state | {(base, cls, name, source)}
        return state

    def _run(self) -> Dict[int, FrozenSet]:
        from ..analysis.dataflow import run_forward

        return run_forward(
            self.method, frozenset(), self._transfer,
            lambda a, b: a & b,
        )

    def allocated_at(self, uid: int, base: str, cls: str, name: str,
                     allow_calls: bool = False) -> bool:
        return self.allocation_witness(uid, base, cls, name,
                                       allow_calls=allow_calls) is not None

    def allocation_witness(self, uid: int, base: str, cls: str, name: str,
                           allow_calls: bool = False
                           ) -> Optional[Tuple[str, List[Dict[str, int]]]]:
        """The allocation fact justifying an IA/MA prune at ``uid``.

        Returns ``(source, store_sites)`` -- the must-fact's value source
        (``"new"`` or ``"call"``) and the in-method store sites compatible
        with it (uid + line of each ``PutField`` on the field whose value
        has that source), or ``None`` when no fact covers the use.  The
        ``"new"`` fact wins when both are present, matching
        :meth:`allocated_at`'s soundness preference.
        """
        canonical = self.symbols.path_of(base) or base
        state = self._in_states.get(uid, frozenset())
        matched: Optional[str] = None
        for fact_base, fact_cls, fact_name, source in state:
            if (fact_base, fact_cls, fact_name) != (canonical, cls, name):
                continue
            if source == "new":
                matched = "new"
                break
            if allow_calls and source == "call":
                matched = "call"
        if matched is None:
            return None
        sites = [
            {"uid": instr.uid, "line": instr.line}
            for instr in self.method.instructions()
            if isinstance(instr, PutField)
            and _field_key(self.module, instr.fieldref) == (cls, name)
            and self._value_source(instr.value) == matched
        ]
        return matched, sites


def deref_consumer_uids(method: Method, use_uid: int) -> List[int]:
    """Instructions that dereference the value produced at ``use_uid``
    (call receivers, field-access bases), following local copies."""
    target: Optional[str] = None
    for instr in method.instructions():
        if instr.uid == use_uid:
            target = instr.target_local()
            break
    if target is None:
        return []
    derefs: List[int] = []
    worklist = [target]
    seen: Set[str] = set()
    while worklist:
        local = worklist.pop()
        if local in seen:
            continue
        seen.add(local)
        for instr in method.instructions():
            if isinstance(instr, Invoke) and instr.base is not None \
                    and instr.base.name == local:
                derefs.append(instr.uid)
            elif isinstance(instr, (GetField, PutField)) \
                    and instr.base.name == local:
                derefs.append(instr.uid)
            elif isinstance(instr, Assign) and isinstance(instr.source, Local) \
                    and instr.source.name == local:
                worklist.append(instr.target)
    return derefs


def use_is_pure_check(module: Module, method: Method, use_uid: int) -> bool:
    """Is this use the guard's own read -- its value consumed *only* by
    null comparisons (following copies)?  Such a read cannot crash and is
    soundly covered by the IG filter regardless of atomicity."""
    target: Optional[str] = None
    for instr in method.instructions():
        if instr.uid == use_uid:
            target = instr.target_local()
            break
    if target is None:
        return False
    saw_check = False
    worklist = [target]
    seen: Set[str] = set()
    while worklist:
        local = worklist.pop()
        if local in seen:
            continue
        seen.add(local)
        for instr in method.instructions():
            operands = instr.operands()
            if not any(isinstance(op, Local) and op.name == local
                       for op in operands):
                continue
            if isinstance(instr, BinaryOp) and instr.op in ("==", "!="):
                other = instr.rhs if (
                    isinstance(instr.lhs, Local) and instr.lhs.name == local
                ) else instr.lhs
                if isinstance(other, Const) and other.is_null():
                    saw_check = True
                    continue
                return False
            if isinstance(instr, Assign) and isinstance(instr.source, Local) \
                    and instr.source.name == local:
                if instr.target is not None:
                    worklist.append(instr.target)
                continue
            return False
    return saw_check


def use_is_benign(module: Module, method: Method, use_uid: int) -> bool:
    """Used-for-Return: the use's value is never dereferenced locally.

    Benign consumers: ``return``, call *arguments* (not receivers), and
    null comparisons.  Copies are followed.  Any other consumer (receiver
    of a call, base of a field access, arithmetic, branch) is a potential
    dereference, so the use stays.
    """
    target: Optional[str] = None
    for instr in method.instructions():
        if instr.uid == use_uid:
            target = instr.target_local()
            break
    if target is None:
        return True  # no value produced: nothing to dereference

    worklist: List[str] = [target]
    seen: Set[str] = set()
    while worklist:
        local = worklist.pop()
        if local in seen:
            continue
        seen.add(local)
        for instr in method.instructions():
            operands = instr.operands()
            if not any(isinstance(op, Local) and op.name == local
                       for op in operands):
                continue
            if isinstance(instr, Return):
                continue
            if isinstance(instr, Invoke):
                if instr.base is not None and instr.base.name == local:
                    return False  # dereferenced as a receiver
                continue  # passed as an argument: benign
            if isinstance(instr, BinaryOp) and instr.op in ("==", "!="):
                other = instr.rhs if (
                    isinstance(instr.lhs, Local) and instr.lhs.name == local
                ) else instr.lhs
                if isinstance(other, Const) and other.is_null():
                    continue  # null comparison: benign
                return False
            if isinstance(instr, Assign) and isinstance(instr.source, Local) \
                    and instr.source.name == local:
                if instr.target is not None:
                    worklist.append(instr.target)
                continue
            return False  # field base, monitor, branch, arithmetic, store…
    return True
