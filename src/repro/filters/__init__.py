"""Happens-before and idiom filters (paper section 6)."""

from .base import Filter, FilterContext, FilterOptions
from .guards import AllocAnalysis, GuardAnalysis, use_is_benign
from .pipeline import FilterPipeline, FilterReport
from .sound import (
    IfGuardFilter,
    IntraAllocationFilter,
    MustHappenBeforeFilter,
    SOUND_FILTERS,
)
from .unsound import (
    CancelHappensBeforeFilter,
    MaybeAllocationFilter,
    MAYHB_FILTER_NAMES,
    PostHappensBeforeFilter,
    ResumeHappensBeforeFilter,
    ThreadThreadFilter,
    UNSOUND_FILTERS,
    UsedForReturnFilter,
)

__all__ = [
    "AllocAnalysis", "CancelHappensBeforeFilter", "Filter", "FilterContext",
    "FilterOptions", "FilterPipeline", "FilterReport", "GuardAnalysis",
    "IfGuardFilter", "IntraAllocationFilter", "MaybeAllocationFilter",
    "MAYHB_FILTER_NAMES", "MustHappenBeforeFilter", "PostHappensBeforeFilter",
    "ResumeHappensBeforeFilter", "SOUND_FILTERS", "ThreadThreadFilter",
    "UNSOUND_FILTERS", "use_is_benign", "UsedForReturnFilter",
]
