"""Filter pipeline: apply sound then unsound filters, with bookkeeping for
the Figure 5 effectiveness study (individual and combined application)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .. import obs
from ..race.warnings import UafWarning, Witness
from ..resilience import checkpoint, CooperativeTimeout, SimulatedWorkerLoss
from .base import Filter, FilterContext
from .sound import SOUND_FILTERS
from .unsound import UNSOUND_FILTERS


@dataclass
class FilterReport:
    """Counts as the paper reports them (warnings = instruction pairs)."""

    potential: int
    after_sound: int
    after_unsound: int
    #: warnings each sound filter prunes when applied *individually*
    sound_individual: Dict[str, int] = field(default_factory=dict)
    #: warnings (surviving sound) each unsound filter prunes individually
    unsound_individual: Dict[str, int] = field(default_factory=dict)
    #: filters that crashed and were skipped for the rest of this
    #: analysis: ``{"filter", "sound", "message"}`` per degradation.
    #: Skipping is always *safe* (a skipped filter prunes nothing, so
    #: every warning it would have removed survives); skipping a sound
    #: filter additionally costs precision the paper's numbers assume,
    #: which is what :attr:`is_degraded` flags.
    degraded: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def is_degraded(self) -> bool:
        """Did a *sound* filter fault (precision below the paper's bar)?"""
        return any(entry.get("sound") for entry in self.degraded)

    @property
    def sound_reduction(self) -> float:
        return 1.0 - self.after_sound / self.potential if self.potential else 0.0

    @property
    def unsound_reduction(self) -> float:
        return (
            1.0 - self.after_unsound / self.after_sound if self.after_sound else 0.0
        )


class FilterPipeline:
    """Run the section-6 filters over a list of warnings (in place)."""

    def __init__(
        self,
        ctx: FilterContext,
        sound_filters: Sequence[Filter] = SOUND_FILTERS,
        unsound_filters: Sequence[Filter] = UNSOUND_FILTERS,
    ) -> None:
        self.ctx = ctx
        self.sound_filters = tuple(sound_filters)
        self.unsound_filters = tuple(unsound_filters)
        #: filter name -> degradation record; once a filter crashes it is
        #: skipped for the remainder of this pipeline's lifetime
        self._faulted: Dict[str, Dict[str, Any]] = {}

    # -- graceful degradation ----------------------------------------------------

    def _record_filter_fault(self, f: Filter, exc: BaseException,
                             occ=None) -> None:
        """A filter crashed: disable it, count it, leave a witness.

        Keeping the occurrence is the conservative outcome -- a skipped
        filter prunes nothing, so no warning is lost; only precision is.
        """
        if f.name in self._faulted:
            return
        message = f"{type(exc).__name__}: {exc}"
        self._faulted[f.name] = {
            "filter": f.name, "sound": bool(f.sound), "message": message,
        }
        obs.add("filters.degraded", 1)
        if occ is not None and occ.witness is None:
            occ.witness = Witness(
                kind="filter-fault",
                detail=(f"filter '{f.name}' crashed and was skipped: "
                        f"{message}"),
                data={"filter": f.name, "sound": bool(f.sound)},
            )

    def _safe_witness(self, f: Filter, occ, warning) -> Optional[Witness]:
        if f.name in self._faulted:
            return None
        try:
            checkpoint(f"filter:{f.name}")
            return f.witness(occ, warning, self.ctx)
        except (CooperativeTimeout, SimulatedWorkerLoss):
            raise  # deadline/worker-loss semantics outrank degradation
        except Exception as exc:
            self._record_filter_fault(f, exc, occ)
            return None

    def _safe_prunes(self, f: Filter, occ, warning) -> bool:
        if f.name in self._faulted:
            return False
        try:
            checkpoint(f"filter:{f.name}")
            return f.prunes(occ, warning, self.ctx)
        except (CooperativeTimeout, SimulatedWorkerLoss):
            raise
        except Exception as exc:
            self._record_filter_fault(f, exc, occ)
            return False

    # -- combined application ----------------------------------------------------

    def apply(self, warnings: List[UafWarning],
              with_individual_stats: bool = True) -> FilterReport:
        report = FilterReport(
            potential=len(warnings), after_sound=0, after_unsound=0
        )
        if with_individual_stats:
            for f in self.sound_filters:
                report.sound_individual[f.name] = self._count_pruned(
                    warnings, f, require_sound_survivor=False
                )

        pruned_by: Dict[str, int] = {}
        witnesses = 0
        for warning in warnings:
            for occ in warning.occurrences:
                for f in self.sound_filters:
                    witness = self._safe_witness(f, occ, warning)
                    if witness is not None:
                        occ.pruned_by = f.name
                        occ.witness = witness
                        witnesses += 1
                        pruned_by[f.name] = pruned_by.get(f.name, 0) + 1
                        break
        for name, count in pruned_by.items():
            obs.add(f"filters.sound.{name}.pruned_occurrences", count)

        survivors = [w for w in warnings if w.survives_sound]
        report.after_sound = len(survivors)
        if with_individual_stats:
            for f in self.unsound_filters:
                report.unsound_individual[f.name] = self._count_pruned(
                    survivors, f, require_sound_survivor=True
                )

        downgraded_by: Dict[str, int] = {}
        for warning in survivors:
            for occ in warning.occurrences:
                if not occ.surviving_sound:
                    continue
                for f in self.unsound_filters:
                    witness = self._safe_witness(f, occ, warning)
                    if witness is not None:
                        occ.downgraded_by = f.name
                        occ.witness = witness
                        witnesses += 1
                        downgraded_by[f.name] = \
                            downgraded_by.get(f.name, 0) + 1
                        break
        for name, count in downgraded_by.items():
            obs.add(f"filters.unsound.{name}.downgraded_occurrences", count)
        obs.add("report.witnesses.filter", witnesses)
        report.after_unsound = len([w for w in survivors if w.survives_all])

        obs.add("filters.potential", report.potential)
        obs.add("filters.after_sound", report.after_sound)
        obs.add("filters.after_unsound", report.after_unsound)
        obs.add("filters.dropped_sound",
                report.potential - report.after_sound)
        obs.add("filters.dropped_unsound",
                report.after_sound - report.after_unsound)
        report.degraded = [self._faulted[name]
                           for name in sorted(self._faulted)]
        return report

    # -- individual application (Figure 5) ------------------------------------------

    def _count_pruned(self, warnings: Iterable[UafWarning], f: Filter,
                      require_sound_survivor: bool) -> int:
        """How many warnings this one filter would prune on its own.

        A warning is pruned when *every* (relevant) occurrence is pruned.
        """
        count = 0
        for warning in warnings:
            occurrences = [
                occ for occ in warning.occurrences
                if not require_sound_survivor or occ.surviving_sound
            ]
            if occurrences and all(
                self._safe_prunes(f, occ, warning) for occ in occurrences
            ):
                count += 1
        return count

    def count_pruned_group(self, warnings: Iterable[UafWarning],
                           filters: Sequence[Filter],
                           require_sound_survivor: bool = False) -> int:
        """Warnings pruned when a *group* of filters is applied together
        (a warning falls when each relevant occurrence is pruned by at
        least one filter of the group) -- used for Figure 5(b)'s combined
        mayHB bar."""
        count = 0
        for warning in warnings:
            occurrences = [
                occ for occ in warning.occurrences
                if not require_sound_survivor or occ.surviving_sound
            ]
            if occurrences and all(
                any(self._safe_prunes(f, occ, warning) for f in filters)
                for occ in occurrences
            ):
                count += 1
        return count

    def overlap(self, warnings: List[UafWarning], name_a: str,
                name_b: str) -> int:
        """Warnings pruned by both named filters individually (the Figure 5
        overlap discussion)."""
        filters = {f.name: f for f in (*self.sound_filters,
                                       *self.unsound_filters)}
        fa, fb = filters[name_a], filters[name_b]
        count = 0
        for warning in warnings:
            if warning.occurrences and all(
                self._safe_prunes(fa, o, warning)
                for o in warning.occurrences
            ) and all(
                self._safe_prunes(fb, o, warning)
                for o in warning.occurrences
            ):
                count += 1
        return count
