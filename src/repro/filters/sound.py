"""Sound filters (paper section 6.1): MHB, If-Guard, Intra-Allocation."""

from __future__ import annotations

from ..android.callbacks import CallbackCategory, SYSTEM_CALLBACKS, UI_CALLBACKS
from ..android.lifecycle import (
    activity_mhb,
    ASYNCTASK_MHB,
    SERVICE_CONNECTION_MHB,
    SERVICE_MHB,
)
from ..race.warnings import Occurrence, UafWarning
from .base import Filter, FilterContext

_NON_LIFECYCLE_CALLBACKS = UI_CALLBACKS | SYSTEM_CALLBACKS


class MustHappenBeforeFilter(Filter):
    """MHB (section 6.1.1): prune when the use must precede the free.

    Three statically sound MHB sources: the Service connection contract,
    the AsyncTask contract, and the Activity/Service lifecycle automaton
    (onCreate before everything, everything before onDestroy -- and
    nothing else, because of the lifecycle back edges).
    """

    name = "MHB"
    sound = True

    def prunes(self, occ: Occurrence, warning: UafWarning,
               ctx: FilterContext) -> bool:
        use_node, free_node = ctx.nodes_of(occ)
        use_cb = use_node.method_name
        free_cb = free_node.method_name

        # MHB-Service (connection contract).
        if (
            use_node.category is CallbackCategory.SERVICE_CONN
            and free_node.category is CallbackCategory.SERVICE_CONN
            and use_node.group_key is not None
            and use_node.group_key == free_node.group_key
            and (use_cb, free_cb) in SERVICE_CONNECTION_MHB
        ):
            return True

        # MHB-AsyncTask.
        if (
            use_node.group_key is not None
            and use_node.group_key == free_node.group_key
            and use_node.group_key.startswith("task:")
            and (use_cb, free_cb) in ASYNCTASK_MHB
        ):
            return True

        # MHB-Lifecycle: both callbacks belong to the same component.
        if (
            use_node.component is not None
            and use_node.component == free_node.component
            and use_node.is_callback
            and free_node.is_callback
        ):
            kind = ctx.component_kind(use_node.component)
            if kind in ("activity", "application"):
                if activity_mhb(use_cb, free_cb, _NON_LIFECYCLE_CALLBACKS):
                    return True
            elif kind == "service":
                if (use_cb, free_cb) in SERVICE_MHB:
                    return True
        return False


class IfGuardFilter(Filter):
    """IG (section 6.1.2): a null check protecting the use is decisive when
    the check-to-use window is atomic with respect to the free -- i.e. both
    are callbacks on the same looper, or a common lock is held."""

    name = "IG"
    sound = True

    def prunes(self, occ: Occurrence, warning: UafWarning,
               ctx: FilterContext) -> bool:
        use = occ.use
        if use.base_local is None:
            return False  # static-field guards are not tracked
        method = ctx._method(use.method_qname)
        from .guards import use_is_pure_check

        if use_is_pure_check(ctx.module, method, use.uid):
            # the read *is* the guard: its value only feeds null
            # comparisons and can never be dereferenced
            return True
        guards = ctx.guards(use.method_qname)
        if not guards.use_protected(
            use.uid, use.base_local,
            use.fieldref.class_name, use.fieldref.field_name,
        ):
            return False
        return ctx.atomic_with_respect_to(occ)


class IntraAllocationFilter(Filter):
    """IA (section 6.1.3): an allocation (`new`) stored into the field
    before the use, within the same atomic callback, makes the free
    unobservable.  Getter-produced values are deliberately *not* accepted
    here (that is the unsound MA filter)."""

    name = "IA"
    sound = True

    def prunes(self, occ: Occurrence, warning: UafWarning,
               ctx: FilterContext) -> bool:
        use = occ.use
        if use.base_local is None:
            return False
        allocs = ctx.allocs(use.method_qname)
        if not allocs.allocated_at(
            use.uid, use.base_local,
            use.fieldref.class_name, use.fieldref.field_name,
            allow_calls=False,
        ):
            return False
        return ctx.atomic_with_respect_to(occ)


SOUND_FILTERS = (MustHappenBeforeFilter(), IfGuardFilter(), IntraAllocationFilter())
