"""Sound filters (paper section 6.1): MHB, If-Guard, Intra-Allocation.

Each filter returns a :class:`repro.race.warnings.Witness` naming the
evidence for its prune -- the specific MHB edge (source contract plus
endpoint callbacks), the guard fact and its atomicity premise, or the
allocation fact and store sites -- so every decision is explainable in
the section-7 report.
"""

from __future__ import annotations

from typing import Optional

from ..android.callbacks import CallbackCategory, SYSTEM_CALLBACKS, UI_CALLBACKS
from ..android.lifecycle import (
    activity_mhb,
    ASYNCTASK_MHB,
    FRAGMENT_MHB,
    ORDERED_BROADCAST_MHB,
    SERVICE_CONNECTION_MHB,
    SERVICE_MHB,
)
from ..race.warnings import Occurrence, UafWarning, Witness
from .base import Filter, FilterContext

_NON_LIFECYCLE_CALLBACKS = UI_CALLBACKS | SYSTEM_CALLBACKS


def _mhb_witness(edge: str, use_node, free_node, **extra) -> Witness:
    """An MHB edge witness: which contract orders which two callbacks."""
    data = {
        "edge": edge,
        "use_callback": f"{use_node.receiver_class}.{use_node.method_name}",
        "free_callback": f"{free_node.receiver_class}.{free_node.method_name}",
        "use_node": use_node.node_id,
        "free_node": free_node.node_id,
        **extra,
    }
    return Witness(
        kind="mhb-edge",
        detail=(f"{edge}: {use_node.method_name} must happen before "
                f"{free_node.method_name}"),
        data=data,
    )


class MustHappenBeforeFilter(Filter):
    """MHB (section 6.1.1): prune when the use must precede the free.

    Five statically sound MHB sources: the Service connection contract,
    the AsyncTask contract, the Fragment transaction lifecycle, the
    ordered-broadcast delivery order, and the Activity/Service lifecycle
    automaton (onCreate before everything, everything before onDestroy --
    and nothing else, because of the lifecycle back edges).
    """

    name = "MHB"
    sound = True

    def witness(self, occ: Occurrence, warning: UafWarning,
                ctx: FilterContext) -> Optional[Witness]:
        use_node, free_node = ctx.nodes_of(occ)
        use_cb = use_node.method_name
        free_cb = free_node.method_name

        # MHB-Service (connection contract).
        if (
            use_node.category is CallbackCategory.SERVICE_CONN
            and free_node.category is CallbackCategory.SERVICE_CONN
            and use_node.group_key is not None
            and use_node.group_key == free_node.group_key
            and (use_cb, free_cb) in SERVICE_CONNECTION_MHB
        ):
            return _mhb_witness("MHB-Service", use_node, free_node,
                                group=use_node.group_key)

        # MHB-AsyncTask.
        if (
            use_node.group_key is not None
            and use_node.group_key == free_node.group_key
            and use_node.group_key.startswith("task:")
            and (use_cb, free_cb) in ASYNCTASK_MHB
        ):
            return _mhb_witness("MHB-AsyncTask", use_node, free_node,
                                group=use_node.group_key)

        # MHB-Fragment: both callbacks belong to the same committed fragment.
        if (
            use_node.group_key is not None
            and use_node.group_key == free_node.group_key
            and use_node.group_key.startswith("frag:")
            and (use_cb, free_cb) in FRAGMENT_MHB
        ):
            return _mhb_witness("MHB-Fragment", use_node, free_node,
                                group=use_node.group_key)

        # MHB-OrderedBroadcast: a dynamically registered receiver handles
        # an ordered broadcast before the result receiver runs.
        if (
            use_node.category is CallbackCategory.RECEIVER
            and free_node.category is CallbackCategory.RECEIVER_RESULT
            and (use_cb, free_cb) in ORDERED_BROADCAST_MHB
        ):
            return _mhb_witness("MHB-OrderedBroadcast", use_node, free_node)

        # MHB-Lifecycle: both callbacks belong to the same component.
        if (
            use_node.component is not None
            and use_node.component == free_node.component
            and use_node.is_callback
            and free_node.is_callback
        ):
            kind = ctx.component_kind(use_node.component)
            if kind in ("activity", "application"):
                if activity_mhb(use_cb, free_cb, _NON_LIFECYCLE_CALLBACKS):
                    return _mhb_witness("MHB-Lifecycle", use_node, free_node,
                                        component=use_node.component,
                                        component_kind=kind)
            elif kind == "service":
                if (use_cb, free_cb) in SERVICE_MHB:
                    return _mhb_witness("MHB-Lifecycle", use_node, free_node,
                                        component=use_node.component,
                                        component_kind=kind)
        return None


class IfGuardFilter(Filter):
    """IG (section 6.1.2): a null check protecting the use is decisive when
    the check-to-use window is atomic with respect to the free -- i.e. both
    are callbacks on the same looper, or a common lock is held."""

    name = "IG"
    sound = True

    def witness(self, occ: Occurrence, warning: UafWarning,
                ctx: FilterContext) -> Optional[Witness]:
        use = occ.use
        if use.base_local is None:
            return None  # static-field guards are not tracked
        method = ctx._method(use.method_qname)
        from .guards import use_is_pure_check

        field = f"{use.fieldref.class_name}.{use.fieldref.field_name}"
        if use_is_pure_check(ctx.module, method, use.uid):
            # the read *is* the guard: its value only feeds null
            # comparisons and can never be dereferenced
            return Witness(
                kind="guard",
                detail=(f"read of {field} at line {use.line} is itself a "
                        "null check; its value is never dereferenced"),
                data={"guard": "pure-check", "field": field,
                      "use_line": use.line},
            )
        guards = ctx.guards(use.method_qname)
        if not guards.use_protected(
            use.uid, use.base_local,
            use.fieldref.class_name, use.fieldref.field_name,
        ):
            return None
        atomicity = ctx.atomicity_witness(occ)
        if atomicity is None:
            return None
        return Witness(
            kind="guard",
            detail=(f"use of {field} at line {use.line} sits behind a "
                    f"null check, atomic via {atomicity['kind']}"),
            data={"guard": "null-check", "field": field,
                  "use_line": use.line, "atomicity": atomicity},
        )


class IntraAllocationFilter(Filter):
    """IA (section 6.1.3): an allocation (`new`) stored into the field
    before the use, within the same atomic callback, makes the free
    unobservable.  Getter-produced values are deliberately *not* accepted
    here (that is the unsound MA filter)."""

    name = "IA"
    sound = True

    def witness(self, occ: Occurrence, warning: UafWarning,
                ctx: FilterContext) -> Optional[Witness]:
        use = occ.use
        if use.base_local is None:
            return None
        allocs = ctx.allocs(use.method_qname)
        found = allocs.allocation_witness(
            use.uid, use.base_local,
            use.fieldref.class_name, use.fieldref.field_name,
            allow_calls=False,
        )
        if found is None:
            return None
        atomicity = ctx.atomicity_witness(occ)
        if atomicity is None:
            return None
        source, sites = found
        field = f"{use.fieldref.class_name}.{use.fieldref.field_name}"
        lines = ", ".join(str(s["line"]) for s in sites) or "?"
        return Witness(
            kind="allocation",
            detail=(f"{field} must hold a fresh `new` stored at "
                    f"line(s) {lines} before the use at line {use.line}"),
            data={"source": source, "field": field, "use_line": use.line,
                  "store_sites": sites, "atomicity": atomicity},
        )


SOUND_FILTERS = (MustHappenBeforeFilter(), IfGuardFilter(), IntraAllocationFilter())
