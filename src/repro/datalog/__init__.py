"""Stratified semi-naive Datalog engine (the bddbddb/Chord substrate)."""

from .chord import build_race_program, datalog_racy_pairs
from .engine import evaluate, query, stratify, MAX_INDEXES_PER_PREDICATE
from .errors import (
    BuiltinTypeError,
    DatalogError,
    StratificationError,
    UnboundVariableError,
)
from .parser import DatalogSyntaxError, parse
from .terms import is_var, Literal, Program, Rule, Var, vars_

__all__ = [
    "build_race_program", "BuiltinTypeError", "datalog_racy_pairs",
    "DatalogError", "DatalogSyntaxError", "evaluate", "is_var", "Literal",
    "MAX_INDEXES_PER_PREDICATE", "parse", "Program", "query", "Rule",
    "StratificationError", "stratify", "UnboundVariableError", "Var",
    "vars_",
]
