"""Stratified semi-naive Datalog engine (the bddbddb/Chord substrate)."""

from .chord import build_race_program, datalog_racy_pairs
from .engine import evaluate, query, StratificationError, stratify
from .parser import DatalogSyntaxError, parse
from .terms import is_var, Literal, Program, Rule, Var, vars_

__all__ = [
    "build_race_program", "datalog_racy_pairs", "DatalogSyntaxError",
    "evaluate", "is_var", "Literal", "parse", "Program", "query", "Rule",
    "StratificationError", "stratify", "Var", "vars_",
]
