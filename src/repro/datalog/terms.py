"""Terms, literals and rules for the Datalog engine.

Chord expresses its analyses as Datalog over bytecode relations and solves
them with bddbddb (paper section 8.1).  This package reimplements the
solver side: a stratified, semi-naive Datalog engine over Python tuples.

Values are arbitrary hashable Python objects; variables are
:class:`Var` instances (conventionally created via :func:`vars_`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .errors import UnboundVariableError


@dataclass(frozen=True)
class Var:
    """A Datalog variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


Term = Union[Var, object]


def vars_(names: str) -> List[Var]:
    """``X, Y = vars_("X Y")`` -- convenience constructor."""
    return [Var(n) for n in names.split()]


def is_var(term: Term) -> bool:
    return isinstance(term, Var)


@dataclass(frozen=True)
class Literal:
    """One body literal: ``pred(args)``, possibly negated.

    ``pred`` may also be a builtin comparison: ``"!="``, ``"=="``, ``"<"``
    with exactly two args, evaluated against bound values during the join.
    """

    pred: str
    args: Tuple[Term, ...]
    negated: bool = False

    BUILTINS = ("!=", "==", "<", "<=")

    @property
    def is_builtin(self) -> bool:
        return self.pred in self.BUILTINS

    def variables(self) -> Set[Var]:
        return {a for a in self.args if is_var(a)}

    def __repr__(self) -> str:
        body = f"{self.pred}({', '.join(map(repr, self.args))})"
        return f"!{body}" if self.negated else body


@dataclass(frozen=True)
class Rule:
    """``head :- body``.  A rule with an empty body asserts a fact."""

    head: Literal
    body: Tuple[Literal, ...] = ()

    def __post_init__(self) -> None:
        if self.head.negated:
            raise ValueError("rule head cannot be negated")
        if self.head.is_builtin:
            raise ValueError("rule head cannot be a builtin")
        head_vars = self.head.variables()
        bound: Set[Var] = set()
        for lit in self.body:
            if not lit.negated and not lit.is_builtin:
                bound |= lit.variables()
        unbound = head_vars - bound - {
            a for a in self.head.args if not is_var(a)
        }
        if self.body and unbound:
            raise ValueError(
                f"head variables {sorted(v.name for v in unbound)} "
                f"not bound by any positive body literal"
            )
        for lit in self.body:
            if lit.negated or lit.is_builtin:
                if not lit.variables() <= bound:
                    # no join order can bind these variables before the
                    # literal runs: reject at load time, naming the rule
                    # and the variable(s), instead of a KeyError mid-join
                    raise UnboundVariableError(
                        self, lit, lit.variables() - bound
                    )

    def predicates_used(self) -> Set[str]:
        return {l.pred for l in self.body if not l.is_builtin}

    def __repr__(self) -> str:
        if not self.body:
            return f"{self.head!r}."
        return f"{self.head!r} :- {', '.join(map(repr, self.body))}."


class Program:
    """A set of rules plus extensional facts."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None) -> None:
        self.rules: List[Rule] = list(rules or [])
        self.facts: Dict[str, Set[Tuple]] = {}

    def rule(self, head: Literal, *body: Literal) -> "Program":
        self.rules.append(Rule(head, tuple(body)))
        return self

    def fact(self, pred: str, *args) -> "Program":
        self.facts.setdefault(pred, set()).add(tuple(args))
        return self

    def add_facts(self, pred: str, rows: Iterable[Sequence]) -> "Program":
        slot = self.facts.setdefault(pred, set())
        for row in rows:
            slot.add(tuple(row))
        return self

    def idb_predicates(self) -> Set[str]:
        return {r.head.pred for r in self.rules}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Program rules={len(self.rules)} facts={sum(map(len, self.facts.values()))}>"
