"""Stratified semi-naive Datalog evaluation with join planning.

The engine computes the least model of a program in four steps:

1. **Stratification** -- build the predicate dependency graph; negated
   edges must not appear in a cycle (no negation through recursion).
   Strata are evaluated bottom-up, so a negated literal always refers to a
   fully-computed relation.
2. **Query planning** -- once per stratum, each rule body is reordered by
   boundness: positive literals are joined most-bound-first, and builtins
   and negated literals float to the earliest point where all their
   variables are bound.  This is what makes ``X < Y, edge(X, Y)``
   evaluable (the builtin waits for ``edge`` to bind ``X`` and ``Y``)
   and what keeps index keys selective.  Delta-eligible literal
   positions are computed here too, once per stratum instead of per
   pass.
3. **Semi-naive iteration** -- within a stratum, each pass joins each rule
   against the *delta* (tuples new in the previous pass) of one positive
   literal at a time, so work is proportional to new facts rather than to
   the whole database.  Delta scans go through a per-pass lazy index of
   their own.
4. **Indexed joins** -- per-predicate hash indexes on bound positions
   keep the common equi-joins linear.  Indexes live in a per-predicate
   LRU registry (so inserts only touch the owning predicate's indexes,
   and a rule set probing many position subsets cannot hold unbounded
   duplicate copies of large relations).

Observability counters: ``datalog.plan.reordered_rules`` and
``datalog.index.{hits,builds,evictions}`` on top of the existing
``datalog.{strata,passes,derived_facts,...}`` family.

Hotspot attribution (see :mod:`repro.obs.hotspots`): every evaluation
also attributes derived facts and join time to the compiled rule and
stratum that produced them.  A rule is identified as
``<head_pred>#<stratum>.<rule>`` (indexes within the stratified
program, so the id is stable across runs of the same program):

* ``hotspot.datalog.rule.<id>.facts`` (counter) / ``.seconds`` (gauge)
* ``hotspot.datalog.stratum.<i>.facts`` (counter) / ``.seconds`` (gauge)

Fact counts attribute each *newly added* fact to the rule whose join
emitted it first within the pass (derivation buffers are walked in
plan order, so attribution is deterministic).  Counters are emitted for
every rule, including zero-fact ones, keeping the key set a function of
the program alone.
"""

from __future__ import annotations

import time
from collections import defaultdict, OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .. import obs
from .errors import (
    BuiltinTypeError,
    DatalogError,
    StratificationError,
    UnboundVariableError,
)
from .terms import is_var, Literal, Program, Rule, Var

Row = Tuple
Bindings = Dict[Var, object]

#: How many distinct position-subset indexes one predicate may hold at
#: once.  Each index is a full copy of the relation grouped by key, so
#: the cap bounds index memory at ``MAX_INDEXES_PER_PREDICATE`` copies
#: per relation; least-recently-used subsets are evicted beyond it.
MAX_INDEXES_PER_PREDICATE = 8


def stratify(program: Program) -> List[List[Rule]]:
    """Group rules into strata evaluated bottom-up."""
    idb = program.idb_predicates()
    # stratum number per predicate; EDB predicates are stratum 0
    stratum: Dict[str, int] = defaultdict(int)
    changed = True
    passes = 0
    limit = (len(idb) + 1) * (len(program.rules) + 1) + 8
    while changed:
        changed = False
        passes += 1
        if passes > limit:
            raise StratificationError(
                "program cannot be stratified (negation through recursion)"
            )
        for rule in program.rules:
            head = rule.head.pred
            for lit in rule.body:
                if lit.is_builtin:
                    continue
                if lit.pred not in idb:
                    continue
                need = stratum[lit.pred] + (1 if lit.negated else 0)
                if stratum[head] < need:
                    stratum[head] = need
                    changed = True

    buckets: Dict[int, List[Rule]] = defaultdict(list)
    for rule in program.rules:
        buckets[stratum[rule.head.pred]].append(rule)
    return [buckets[i] for i in sorted(buckets)]


class _Database:
    """Relations plus a per-predicate LRU registry of hash indexes."""

    def __init__(self, facts: Dict[str, Set[Row]],
                 max_indexes: int = MAX_INDEXES_PER_PREDICATE) -> None:
        self.relations: Dict[str, Set[Row]] = {
            pred: set(rows) for pred, rows in facts.items()
        }
        #: pred -> (positions -> key -> rows), LRU-ordered per predicate
        self._indexes: Dict[
            str, "OrderedDict[Tuple[int, ...], Dict[Tuple, List[Row]]]"
        ] = {}
        self.max_indexes = max_indexes
        self.index_hits = 0
        self.index_builds = 0
        self.index_evictions = 0

    def rows(self, pred: str) -> Set[Row]:
        return self.relations.setdefault(pred, set())

    def add(self, pred: str, row: Row) -> bool:
        rel = self.rows(pred)
        if row in rel:
            return False
        rel.add(row)
        # keep this predicate's indexes fresh (other predicates' indexes
        # are untouched -- inserts no longer scan the whole registry)
        registry = self._indexes.get(pred)
        if registry:
            for positions, index in registry.items():
                key = tuple(row[i] for i in positions)
                index.setdefault(key, []).append(row)
        return True

    def lookup(self, pred: str, bound: Dict[int, object]) -> Iterable[Row]:
        """Rows of ``pred`` matching constants at the given positions."""
        if not bound:
            return self.rows(pred)
        positions = tuple(sorted(bound))
        key = tuple(bound[i] for i in positions)
        registry = self._indexes.setdefault(pred, OrderedDict())
        index = registry.get(positions)
        if index is None:
            index = {}
            for row in self.rows(pred):
                k = tuple(row[i] for i in positions)
                index.setdefault(k, []).append(row)
            registry[positions] = index
            self.index_builds += 1
            if len(registry) > self.max_indexes:
                registry.popitem(last=False)
                self.index_evictions += 1
        else:
            self.index_hits += 1
            registry.move_to_end(positions)
        return index.get(key, ())


class _DeltaView:
    """One pass's delta rows with lazy position indexes of their own.

    Deltas are rebuilt every pass, so these indexes are tiny and
    short-lived; no cap or eviction is needed.
    """

    __slots__ = ("rows", "_indexes")

    def __init__(self, rows: Set[Row]) -> None:
        self.rows = rows
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple, List[Row]]] = {}

    def lookup(self, bound: Dict[int, object]) -> Iterable[Row]:
        if not bound:
            return self.rows
        positions = tuple(sorted(bound))
        key = tuple(bound[i] for i in positions)
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for row in self.rows:
                k = tuple(row[i] for i in positions)
                index.setdefault(k, []).append(row)
            self._indexes[positions] = index
        return index.get(key, ())


_BUILTIN_FUNCS = {
    "!=": lambda a, b: a != b,
    "==": lambda a, b: a == b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


def _match(literal: Literal, row: Row, env: Bindings) -> Optional[Bindings]:
    if len(row) != len(literal.args):
        return None
    out = env
    copied = False
    for arg, value in zip(literal.args, row):
        if is_var(arg):
            bound = out.get(arg, _MISSING)
            if bound is _MISSING:
                if not copied:
                    out = dict(out)
                    copied = True
                out[arg] = value
            elif bound != value:
                return None
        elif arg != value:
            return None
    return out


_MISSING = object()


def _bound_positions(literal: Literal, env: Bindings) -> Dict[int, object]:
    bound: Dict[int, object] = {}
    for i, arg in enumerate(literal.args):
        if is_var(arg):
            if arg in env:
                bound[i] = env[arg]
        else:
            bound[i] = arg
    return bound


def _eval_builtin(literal: Literal, env: Bindings) -> bool:
    fn = _BUILTIN_FUNCS[literal.pred]
    values = []
    for arg in literal.args:
        if is_var(arg):
            if arg not in env:
                # Planning defers builtins until their variables are
                # bound, so this is unreachable for well-formed rules;
                # the guard turns a raw KeyError into a typed error.
                raise UnboundVariableError(literal, literal, {arg})
            values.append(env[arg])
        else:
            values.append(arg)
    try:
        result = fn(*values)
    except TypeError as exc:
        raise BuiltinTypeError(literal, values, exc) from exc
    return not result if literal.negated else result


def _instantiate(literal: Literal, env: Bindings) -> Row:
    return tuple(env[a] if is_var(a) else a for a in literal.args)


# -- query planning ------------------------------------------------------------


def _plan_order(rule: Rule, pinned: Optional[int] = None) -> Tuple[int, ...]:
    """Order body literal indexes by boundness.

    Greedy: starting from the (optionally pinned-first) literal, place
    every builtin/negated literal as soon as all its variables are
    bound, and otherwise pick the positive literal with the most bound
    argument positions (constants plus already-bound variables),
    breaking ties by source position so plans are deterministic.
    """
    body = rule.body
    order: List[int] = []
    bound_vars: Set[Var] = set()
    remaining = set(range(len(body)))

    def place(i: int) -> None:
        order.append(i)
        remaining.discard(i)
        if not body[i].negated and not body[i].is_builtin:
            bound_vars.update(body[i].variables())

    if pinned is not None:
        place(pinned)
    while remaining:
        # constrained literals (builtins/negation) run as early as their
        # variables allow: they only filter, so earlier is cheaper
        placed = True
        while placed:
            placed = False
            for i in sorted(remaining):
                lit = body[i]
                if (lit.is_builtin or lit.negated) \
                        and lit.variables() <= bound_vars:
                    place(i)
                    placed = True
        if not remaining:
            break
        candidates = [
            i for i in sorted(remaining)
            if not body[i].is_builtin and not body[i].negated
        ]
        if not candidates:
            # every remaining literal is constrained yet unbound; rule
            # validation should have rejected this program at load time
            stuck = body[min(remaining)]
            raise UnboundVariableError(
                rule, stuck, stuck.variables() - bound_vars
            )
        best = max(
            candidates,
            key=lambda i: (
                sum(
                    1 for a in body[i].args
                    if not is_var(a) or a in bound_vars
                ),
                -i,
            ),
        )
        place(best)
    return tuple(order)


class _CompiledRule:
    """Per-stratum rule metadata: plans and delta-eligible positions."""

    __slots__ = ("rule", "body", "base_plan", "delta_positions",
                 "delta_plans", "reordered")

    def __init__(self, rule: Rule, stratum_preds: Set[str]) -> None:
        self.rule = rule
        self.body = rule.body
        base_order = _plan_order(rule)
        self.base_plan = tuple(rule.body[i] for i in base_order)
        self.reordered = base_order != tuple(range(len(rule.body)))
        #: body indexes that may scan a delta: positive literals over a
        #: predicate derived in this stratum (computed once, not per pass)
        self.delta_positions: Tuple[int, ...] = tuple(
            i for i, lit in enumerate(rule.body)
            if not lit.is_builtin and not lit.negated
            and lit.pred in stratum_preds
        )
        #: the delta literal is pinned first (deltas are small), then
        #: the rest of the body is boundness-ordered as usual
        self.delta_plans: Dict[int, Tuple[Literal, ...]] = {
            i: tuple(rule.body[j] for j in _plan_order(rule, pinned=i))
            for i in self.delta_positions
        }


def _compile_stratum(rules: Sequence[Rule],
                     stratum_preds: Set[str]) -> List[_CompiledRule]:
    return [_CompiledRule(rule, stratum_preds) for rule in rules]


# -- joins ---------------------------------------------------------------------


def _join(
    db: _Database,
    body: Sequence[Literal],
    env: Bindings,
    delta_index: Optional[int],
    delta: Optional[_DeltaView],
    position: int = 0,
) -> Iterable[Bindings]:
    """Left-to-right join of a *planned* body; the literal at
    ``delta_index`` scans (an index of) the delta instead of the full
    relation."""
    if position == len(body):
        yield env
        return
    literal = body[position]
    if literal.is_builtin:
        if _eval_builtin(literal, env):
            yield from _join(db, body, env, delta_index, delta, position + 1)
        return
    if literal.negated:
        bound = _bound_positions(literal, env)
        for row in db.lookup(literal.pred, bound):
            if _match(literal, row, env) is not None:
                return  # negated literal satisfied: fail this env
        yield from _join(db, body, env, delta_index, delta, position + 1)
        return

    if position == delta_index and delta is not None:
        source: Iterable[Row] = delta.lookup(_bound_positions(literal, env))
    else:
        source = db.lookup(literal.pred, _bound_positions(literal, env))
    for row in source:
        new_env = _match(literal, row, env)
        if new_env is not None:
            yield from _join(db, body, new_env, delta_index, delta,
                             position + 1)


def evaluate(program: Program) -> Dict[str, Set[Row]]:
    """Compute the least model; returns all relations (EDB and IDB)."""
    db = _Database(program.facts)
    for rule in program.rules:
        if not rule.body:  # rule-level facts
            db.add(rule.head.pred, _instantiate(rule.head, {}))

    strata = stratify(program)
    obs.add("datalog.strata", len(strata))
    obs.add("datalog.edb_facts", sum(len(r) for r in db.relations.values()))
    reordered_rules = 0
    # hotspot attribution: rule id -> derived facts / join seconds, in
    # stratified program order (see module docstring)
    rule_facts: "OrderedDict[str, int]" = OrderedDict()
    rule_seconds: Dict[str, float] = {}
    stratum_stats: List[Tuple[int, float]] = []
    for stratum_idx, stratum in enumerate(strata):
        stratum_t0 = time.perf_counter()
        rules = [r for r in stratum if r.body]
        stratum_preds = {r.head.pred for r in rules}
        compiled = _compile_stratum(rules, stratum_preds)
        reordered_rules += sum(1 for c in compiled if c.reordered)
        rule_ids = [
            f"{c.rule.head.pred}#{stratum_idx}.{i}"
            for i, c in enumerate(compiled)
        ]
        for rule_id in rule_ids:
            rule_facts[rule_id] = 0
            rule_seconds[rule_id] = 0.0
        stratum_facts = 0
        # Derivations are buffered per pass so joins never observe a
        # relation mutating underneath them.
        delta: Dict[str, Set[Row]] = defaultdict(set)
        derived: List[Tuple[str, str, Row]] = []
        for rule_id, crule in zip(rule_ids, compiled):
            head = crule.rule.head
            t0 = time.perf_counter()
            for env in _join(db, crule.base_plan, {}, None, None):
                derived.append((rule_id, head.pred, _instantiate(head, env)))
            rule_seconds[rule_id] += time.perf_counter() - t0
        for rule_id, pred, row in derived:
            if db.add(pred, row):
                delta[pred].add(row)
                rule_facts[rule_id] += 1
                stratum_facts += 1
        obs.add("datalog.passes")
        obs.add("datalog.derived_facts",
                sum(len(rows) for rows in delta.values()))
        # semi-naive iterations
        while any(delta.values()):
            views = {pred: _DeltaView(rows) for pred, rows in delta.items()
                     if rows}
            derived = []
            for rule_id, crule in zip(rule_ids, compiled):
                head = crule.rule.head
                t0 = time.perf_counter()
                for i in crule.delta_positions:
                    view = views.get(crule.body[i].pred)
                    if view is None:
                        continue
                    plan = crule.delta_plans[i]
                    for env in _join(db, plan, {}, 0, view):
                        derived.append(
                            (rule_id, head.pred, _instantiate(head, env))
                        )
                rule_seconds[rule_id] += time.perf_counter() - t0
            new_delta: Dict[str, Set[Row]] = defaultdict(set)
            for rule_id, pred, row in derived:
                if db.add(pred, row):
                    new_delta[pred].add(row)
                    rule_facts[rule_id] += 1
                    stratum_facts += 1
            delta = new_delta
            obs.add("datalog.passes")
            obs.add("datalog.derived_facts",
                    sum(len(rows) for rows in delta.values()))
        stratum_stats.append(
            (stratum_facts, time.perf_counter() - stratum_t0)
        )
    obs.add("datalog.total_facts",
            sum(len(rows) for rows in db.relations.values()))
    obs.add("datalog.plan.reordered_rules", reordered_rules)
    obs.add("datalog.index.hits", db.index_hits)
    obs.add("datalog.index.builds", db.index_builds)
    obs.add("datalog.index.evictions", db.index_evictions)
    for rule_id, facts in rule_facts.items():
        obs.add(f"hotspot.datalog.rule.{rule_id}.facts", facts)
        obs.add_gauge(f"hotspot.datalog.rule.{rule_id}.seconds",
                      rule_seconds[rule_id])
    for stratum_idx, (facts, seconds) in enumerate(stratum_stats):
        obs.add(f"hotspot.datalog.stratum.{stratum_idx}.facts", facts)
        obs.add_gauge(f"hotspot.datalog.stratum.{stratum_idx}.seconds",
                      seconds)
    return db.relations


def query(program: Program, pred: str) -> Set[Row]:
    """Evaluate the program and return one relation."""
    return evaluate(program).get(pred, set())
