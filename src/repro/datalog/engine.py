"""Stratified semi-naive Datalog evaluation.

The engine computes the least model of a program in three steps:

1. **Stratification** -- build the predicate dependency graph; negated
   edges must not appear in a cycle (no negation through recursion).
   Strata are evaluated bottom-up, so a negated literal always refers to a
   fully-computed relation.
2. **Semi-naive iteration** -- within a stratum, each pass joins each rule
   against the *delta* (tuples new in the previous pass) of one positive
   literal at a time, so work is proportional to new facts rather than to
   the whole database.
3. **Indexed joins** -- literals are matched left to right with an
   environment of variable bindings; per-predicate hash indexes on bound
   positions keep the common equi-joins linear.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .. import obs
from .terms import is_var, Literal, Program, Rule, Var

Row = Tuple
Bindings = Dict[Var, object]


class StratificationError(Exception):
    """The program negates a predicate inside a recursive cycle."""


def stratify(program: Program) -> List[List[Rule]]:
    """Group rules into strata evaluated bottom-up."""
    idb = program.idb_predicates()
    # stratum number per predicate; EDB predicates are stratum 0
    stratum: Dict[str, int] = defaultdict(int)
    changed = True
    passes = 0
    limit = (len(idb) + 1) * (len(program.rules) + 1) + 8
    while changed:
        changed = False
        passes += 1
        if passes > limit:
            raise StratificationError(
                "program cannot be stratified (negation through recursion)"
            )
        for rule in program.rules:
            head = rule.head.pred
            for lit in rule.body:
                if lit.is_builtin:
                    continue
                if lit.pred not in idb:
                    continue
                need = stratum[lit.pred] + (1 if lit.negated else 0)
                if stratum[head] < need:
                    stratum[head] = need
                    changed = True

    buckets: Dict[int, List[Rule]] = defaultdict(list)
    for rule in program.rules:
        buckets[stratum[rule.head.pred]].append(rule)
    return [buckets[i] for i in sorted(buckets)]


class _Database:
    """Relations plus per-(pred, bound positions) hash indexes."""

    def __init__(self, facts: Dict[str, Set[Row]]) -> None:
        self.relations: Dict[str, Set[Row]] = {
            pred: set(rows) for pred, rows in facts.items()
        }
        self._indexes: Dict[Tuple[str, Tuple[int, ...]], Dict[Tuple, List[Row]]] = {}

    def rows(self, pred: str) -> Set[Row]:
        return self.relations.setdefault(pred, set())

    def add(self, pred: str, row: Row) -> bool:
        rel = self.rows(pred)
        if row in rel:
            return False
        rel.add(row)
        # keep indexes fresh
        for (ipred, positions), index in self._indexes.items():
            if ipred == pred:
                key = tuple(row[i] for i in positions)
                index.setdefault(key, []).append(row)
        return True

    def lookup(self, pred: str, bound: Dict[int, object]) -> Iterable[Row]:
        """Rows of ``pred`` matching constants at the given positions."""
        if not bound:
            return self.rows(pred)
        positions = tuple(sorted(bound))
        key = tuple(bound[i] for i in positions)
        index_key = (pred, positions)
        index = self._indexes.get(index_key)
        if index is None:
            index = {}
            for row in self.rows(pred):
                k = tuple(row[i] for i in positions)
                index.setdefault(k, []).append(row)
            self._indexes[index_key] = index
        return index.get(key, ())


_BUILTIN_FUNCS = {
    "!=": lambda a, b: a != b,
    "==": lambda a, b: a == b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


def _match(literal: Literal, row: Row, env: Bindings) -> Optional[Bindings]:
    if len(row) != len(literal.args):
        return None
    out = env
    copied = False
    for arg, value in zip(literal.args, row):
        if is_var(arg):
            bound = out.get(arg, _MISSING)
            if bound is _MISSING:
                if not copied:
                    out = dict(out)
                    copied = True
                out[arg] = value
            elif bound != value:
                return None
        elif arg != value:
            return None
    return out


_MISSING = object()


def _bound_positions(literal: Literal, env: Bindings) -> Dict[int, object]:
    bound: Dict[int, object] = {}
    for i, arg in enumerate(literal.args):
        if is_var(arg):
            if arg in env:
                bound[i] = env[arg]
        else:
            bound[i] = arg
    return bound


def _eval_builtin(literal: Literal, env: Bindings) -> bool:
    fn = _BUILTIN_FUNCS[literal.pred]
    values = []
    for arg in literal.args:
        values.append(env[arg] if is_var(arg) else arg)
    result = fn(*values)
    return not result if literal.negated else result


def _instantiate(literal: Literal, env: Bindings) -> Row:
    return tuple(env[a] if is_var(a) else a for a in literal.args)


def _join(
    db: _Database,
    body: List[Literal],
    env: Bindings,
    delta_index: Optional[int],
    delta_rows: Optional[Set[Row]],
    position: int = 0,
) -> Iterable[Bindings]:
    """Left-to-right join; literal at ``delta_index`` scans only deltas."""
    if position == len(body):
        yield env
        return
    literal = body[position]
    if literal.is_builtin:
        if _eval_builtin(literal, env):
            yield from _join(db, body, env, delta_index, delta_rows, position + 1)
        return
    if literal.negated:
        bound = _bound_positions(literal, env)
        for row in db.lookup(literal.pred, bound):
            if _match(literal, row, env) is not None:
                return  # negated literal satisfied: fail this env
        yield from _join(db, body, env, delta_index, delta_rows, position + 1)
        return

    if position == delta_index and delta_rows is not None:
        source: Iterable[Row] = delta_rows
    else:
        source = db.lookup(literal.pred, _bound_positions(literal, env))
    for row in source:
        new_env = _match(literal, row, env)
        if new_env is not None:
            yield from _join(db, body, new_env, delta_index, delta_rows,
                             position + 1)


def evaluate(program: Program) -> Dict[str, Set[Row]]:
    """Compute the least model; returns all relations (EDB and IDB)."""
    db = _Database(program.facts)
    for rule in program.rules:
        if not rule.body:  # rule-level facts
            db.add(rule.head.pred, _instantiate(rule.head, {}))

    strata = stratify(program)
    obs.add("datalog.strata", len(strata))
    obs.add("datalog.edb_facts", sum(len(r) for r in db.relations.values()))
    for stratum in strata:
        rules = [r for r in stratum if r.body]
        stratum_preds = {r.head.pred for r in rules}
        # Derivations are buffered per pass so joins never observe a
        # relation mutating underneath them.
        delta: Dict[str, Set[Row]] = defaultdict(set)
        derived: List[Tuple[str, Row]] = []
        for rule in rules:
            for env in _join(db, list(rule.body), {}, None, None):
                derived.append((rule.head.pred, _instantiate(rule.head, env)))
        for pred, row in derived:
            if db.add(pred, row):
                delta[pred].add(row)
        obs.add("datalog.passes")
        obs.add("datalog.derived_facts",
                sum(len(rows) for rows in delta.values()))
        # semi-naive iterations
        while any(delta.values()):
            derived = []
            for rule in rules:
                body = list(rule.body)
                for i, literal in enumerate(body):
                    if literal.is_builtin or literal.negated:
                        continue
                    if literal.pred not in stratum_preds:
                        continue
                    rows = delta.get(literal.pred)
                    if not rows:
                        continue
                    for env in _join(db, body, {}, i, rows):
                        derived.append(
                            (rule.head.pred, _instantiate(rule.head, env))
                        )
            new_delta: Dict[str, Set[Row]] = defaultdict(set)
            for pred, row in derived:
                if db.add(pred, row):
                    new_delta[pred].add(row)
            delta = new_delta
            obs.add("datalog.passes")
            obs.add("datalog.derived_facts",
                    sum(len(rows) for rows in delta.values()))
    obs.add("datalog.total_facts",
            sum(len(rows) for rows in db.relations.values()))
    return db.relations


def query(program: Program, pred: str) -> Set[Row]:
    """Evaluate the program and return one relation."""
    return evaluate(program).get(pred, set())
