"""Textual Datalog syntax.

Grammar::

    program  ::= clause*
    clause   ::= literal ( ":-" literal ("," literal)* )? "."
    literal  ::= "!"? IDENT "(" term ("," term)* ")"
               | term ("!="|"=="|"<"|"<=") term
    term     ::= VARIABLE | IDENT | NUMBER | STRING

Variables start with an uppercase letter or ``_``; identifiers starting
lowercase are symbol constants; ``%`` starts a line comment.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from .terms import Literal, Program, Rule, Var

_TOKEN = re.compile(
    r"""
    (?P<ws>\s+|%[^\n]*)
  | (?P<turnstile>:-)
  | (?P<op>!=|==|<=|<)
  | (?P<punct>[(),.!])
  | (?P<number>-?\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_$][A-Za-z0-9_$]*)
    """,
    re.VERBOSE,
)


class DatalogSyntaxError(Exception):
    pass


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            raise DatalogSyntaxError(f"bad character {text[pos]!r} at {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind != "ws":
            tokens.append((kind, match.group()))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.index]

    def next(self) -> Tuple[str, str]:
        token = self.tokens[self.index]
        if token[0] != "eof":
            self.index += 1
        return token

    def expect(self, kind: str, value: str = None) -> Tuple[str, str]:
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise DatalogSyntaxError(f"expected {value or kind}, got {token[1]!r}")
        return token

    def parse_term(self):
        kind, value = self.next()
        if kind == "number":
            return int(value)
        if kind == "string":
            return value[1:-1].replace('\\"', '"').replace("\\\\", "\\")
        if kind == "ident":
            if value[0].isupper() or value[0] == "_":
                return Var(value)
            return value
        raise DatalogSyntaxError(f"expected a term, got {value!r}")

    def parse_literal(self) -> Literal:
        negated = False
        if self.peek() == ("punct", "!"):
            self.next()
            negated = True
        # relational literal or builtin comparison
        kind, value = self.peek()
        if kind == "ident" and self.tokens[self.index + 1] == ("punct", "("):
            name = self.next()[1]
            self.expect("punct", "(")
            args = [self.parse_term()]
            while self.peek() == ("punct", ","):
                self.next()
                args.append(self.parse_term())
            self.expect("punct", ")")
            return Literal(name, tuple(args), negated)
        lhs = self.parse_term()
        op = self.expect("op")[1]
        rhs = self.parse_term()
        return Literal(op, (lhs, rhs), negated)

    def parse_program(self) -> Program:
        program = Program()
        while self.peek()[0] != "eof":
            head = self.parse_literal()
            body: List[Literal] = []
            if self.peek() == ("turnstile", ":-"):
                self.next()
                body.append(self.parse_literal())
                while self.peek() == ("punct", ","):
                    self.next()
                    body.append(self.parse_literal())
            self.expect("punct", ".")
            if not body and head.variables():
                raise DatalogSyntaxError(f"fact {head!r} contains variables")
            program.rules.append(Rule(head, tuple(body)))
        return program


def parse(text: str) -> Program:
    """Parse textual Datalog into a :class:`Program`."""
    return _Parser(text).parse_program()
