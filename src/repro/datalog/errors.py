"""Typed errors for the Datalog engine.

Everything the engine can reject -- an unstratifiable program, a builtin
whose variables no positive literal can bind, a comparison over
incomparable column types -- derives from :class:`DatalogError`, so
callers (and the resilience layer's fault taxonomy) can catch one type
instead of fishing ``KeyError``/``TypeError`` out of join internals.

:class:`UnboundVariableError` doubles as a :class:`ValueError` because
rule validation historically raised ``ValueError``; existing callers
keep working.
"""

from __future__ import annotations

from typing import Sequence


class DatalogError(Exception):
    """Base class for every error the Datalog engine raises."""


class StratificationError(DatalogError):
    """The program negates a predicate inside a recursive cycle."""


class UnboundVariableError(DatalogError, ValueError):
    """A builtin or negated literal can never have its variables bound.

    Raised at program-load time (rule construction): the offending
    variable appears in no positive body literal, so no join order can
    bind it before the builtin/negated literal is evaluated.
    """

    def __init__(self, rule: object, literal: object, variables) -> None:
        self.rule = rule
        self.literal = literal
        self.variables = sorted(v.name for v in variables)
        names = ", ".join(self.variables)
        super().__init__(
            f"in rule {rule!r}: literal {literal!r} uses variable(s) "
            f"{names} not bound by any positive body literal"
        )


class BuiltinTypeError(DatalogError):
    """A builtin comparison was applied to incomparable values.

    ``<``/``<=`` raise ``TypeError`` when fact columns mix types (e.g.
    ``int`` vs ``str`` timestamps from a user extension); the engine
    re-raises it as this error, naming the literal and the offending
    values, so the resilience layer can record an ``AnalysisFault``
    instead of crashing the run.
    """

    def __init__(self, literal: object, values: Sequence, cause: TypeError) -> None:
        self.literal = literal
        self.values = tuple(values)
        rendered = " and ".join(repr(v) for v in self.values)
        super().__init__(
            f"builtin {literal!r} cannot compare {rendered}: {cause}"
        )
