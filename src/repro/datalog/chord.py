"""Chord-style race detection expressed as Datalog rules.

This is the declarative counterpart of :mod:`repro.race.detector`: the same
use/free pairing, alias and cross-thread conditions, written as a Datalog
program over relations extracted from the threadified module.  The test
suite asserts it computes exactly the warnings of the imperative detector,
mirroring how Chord's Datalog analyses relate to their specifications.

Relations (EDB):

    use(E, Field)          E is a use access event on Field
    free(E, Field)         E is a free access event on Field
    eventNode(E, N)        event E belongs to thread-forest node N
    basePts(E, O)          receiver of E may point to abstract object O
    staticAccess(E)        E accesses a static field
    escaping(O)            abstract object O escapes its thread
    pair(E, uid)           event E is instruction uid (for reporting)

Derived (IDB):

    aliased(U, F)          receivers may alias (or both static)
    racyPair(U, F)         the potential UAF relation of section 5
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..analysis.escape import compute_escaping
from ..analysis.pointsto import PointsToResult
from ..race.events import collect_access_events, USE
from ..threadify.transform import ThreadifiedProgram
from .terms import Literal, Program, vars_


def build_race_program(
    program: ThreadifiedProgram,
    pointsto: PointsToResult,
    use_escape: bool = True,
    events=None,
) -> Program:
    """Extract EDB relations and attach the racy-pair rules."""
    dl = Program()
    if events is None:
        events = collect_access_events(program)
    escaping = compute_escaping(pointsto, program) if use_escape else None

    for i, event in enumerate(events):
        field_key = (event.fieldref.class_name, event.fieldref.field_name)
        dl.fact("use" if event.kind == USE else "free", i, field_key)
        dl.fact("eventNode", i, event.node_id)
        dl.fact("eventUid", i, event.uid)
        if event.is_static:
            dl.fact("staticAccess", i)
        else:
            objs = pointsto.pts(event.method_qname, event.base_local)
            for obj in objs:
                dl.fact("basePts", i, obj)
    if escaping is not None:
        for obj in escaping:
            dl.fact("escaping", obj)

    U, F, Fld, O, NU, NF = vars_("U F Fld O NU NF")
    alias_body = [
        Literal("basePts", (U, O)),
        Literal("basePts", (F, O)),
    ]
    if use_escape:
        alias_body.append(Literal("escaping", (O,)))
    dl.rule(Literal("aliased", (U, F)), *alias_body)
    dl.rule(
        Literal("aliased", (U, F)),
        Literal("staticAccess", (U,)),
        Literal("staticAccess", (F,)),
    )
    dl.rule(
        Literal("racyPair", (U, F)),
        Literal("use", (U, Fld)),
        Literal("free", (F, Fld)),
        Literal("eventNode", (U, NU)),
        Literal("eventNode", (F, NF)),
        Literal("!=", (NU, NF)),
        Literal("aliased", (U, F)),
    )
    return dl


def datalog_racy_pairs(
    program: ThreadifiedProgram,
    pointsto: PointsToResult,
    use_escape: bool = True,
) -> Set[Tuple[int, int]]:
    """(use uid, free uid) pairs computed declaratively."""
    dl = build_race_program(program, pointsto, use_escape)
    relations = None
    from .engine import evaluate

    relations = evaluate(dl)
    uid_of: Dict[int, int] = {e: u for e, u in relations.get("eventUid", ())}
    return {
        (uid_of[u], uid_of[f])
        for u, f in relations.get("racyPair", ())
    }
