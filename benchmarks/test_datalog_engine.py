"""Substrate benchmark: the Datalog engine (Chord's bddbddb stand-in).

Times semi-naive transitive closure and the full race-rule solve, and
checks the semi-naive evaluation scales past what a naive engine would.
"""

import pytest

from repro.corpus import app
from repro.datalog import datalog_racy_pairs, Literal, Program, query, vars_
from repro.harness.table1 import analyze_corpus_app


def chain_closure_program(n):
    X, Y, Z = vars_("X Y Z")
    program = Program()
    program.add_facts("edge", [(i, i + 1) for i in range(n)])
    program.rule(Literal("path", (X, Y)), Literal("edge", (X, Y)))
    program.rule(
        Literal("path", (X, Z)),
        Literal("path", (X, Y)), Literal("edge", (Y, Z)),
    )
    return program


def test_benchmark_transitive_closure_chain(benchmark):
    program = chain_closure_program(60)
    paths = benchmark(query, program, "path")
    assert len(paths) == 60 * 61 // 2


def test_benchmark_race_rules_on_firefox(benchmark):
    spec = app("firefox")
    result = analyze_corpus_app(spec)

    pairs = benchmark(
        datalog_racy_pairs, result.program, result.pointsto
    )
    assert pairs == {w.key for w in result.warnings}


def test_closure_is_complete_on_dense_graph():
    import random

    rng = random.Random(7)
    n = 25
    edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(120)}
    X, Y, Z = vars_("X Y Z")
    program = Program().add_facts("edge", edges)
    program.rule(Literal("path", (X, Y)), Literal("edge", (X, Y)))
    program.rule(
        Literal("path", (X, Z)),
        Literal("path", (X, Y)), Literal("edge", (Y, Z)),
    )
    paths = query(program, "path")
    # reference closure via adjacency matrix powers
    reach = {(a, b) for a, b in edges}
    changed = True
    while changed:
        changed = False
        for (a, b) in list(reach):
            for (c, d) in edges:
                if b == c and (a, d) not in reach:
                    reach.add((a, d))
                    changed = True
    assert paths == reach
