"""Ablation: the k in k-object-sensitive points-to (paper section 8.5/8.8).

The paper uses k=2 "for balancing precision and scalability" and notes
the k-value can be lowered at the cost of precision.  This bench sweeps
k and checks the precision claim on a context-sensitive workload: the
static-factory pattern stays imprecise at every k (its heap context is
empty -- the paper's stated limitation), while constructor-allocated
sessions are separated as soon as k >= 2.
"""

import pytest

from repro.core import analyze_app, AnalysisConfig

# Two wrappers whose Holder is allocated at ONE site inside the Wrapper
# constructor; the holders are distinguishable only by the receiver
# context, i.e. with k >= 2 heap naming.  The use touches the UI
# wrapper's holder, the free the worker wrapper's.
CTX_APP = """
class Payload { void touch() { } }
class Holder { Payload slot; }
class Wrapper {
  Holder holder;
  Wrapper() {
    holder = new Holder();
    holder.slot = new Payload();
  }
}
class A extends Activity {
  Wrapper uiWrapper;
  Wrapper workerWrapper;
  void onCreate(Bundle b) {
    uiWrapper = new Wrapper();
    workerWrapper = new Wrapper();
  }
  void onClick(View v) {
    Holder h = uiWrapper.holder;
    Payload p = h.slot;
    p.touch();
  }
  void onStop() {
    Holder h = workerWrapper.holder;
    h.slot = null;
  }
}
"""

# Same shape, but the wrappers come from a static factory: their contexts
# are lost (the section 8.5 imprecision), so no k recovers the precision.
FACTORY_APP = CTX_APP.replace(
    "    uiWrapper = new Wrapper();\n    workerWrapper = new Wrapper();",
    "    uiWrapper = Wrapper.make();\n    workerWrapper = Wrapper.make();",
).replace(
    "  Wrapper() {\n    holder = new Holder();\n    holder.slot = new Payload();\n  }",
    "  Wrapper() {\n    holder = new Holder();\n    holder.slot = new Payload();\n  }\n"
    "  static Wrapper make() { return new Wrapper(); }",
)


def warnings_at(source, k):
    result = analyze_app(source, config=AnalysisConfig(k=k))
    return [w for w in result.warnings if w.fieldref.field_name == "slot"]


@pytest.mark.parametrize("k", [0, 1, 2, 3])
def test_benchmark_k_sweep(benchmark, k):
    result = benchmark(analyze_app, CTX_APP, config=AnalysisConfig(k=k))
    assert result.program.module.sealed


def test_k2_separates_constructor_contexts():
    # imprecise at k<=1: the two payload allocations share a heap name
    assert warnings_at(CTX_APP, 1), "k=1 must conflate the sessions"
    # precise at k=2 (the paper's default)
    assert not warnings_at(CTX_APP, 2), "k=2 must separate the sessions"


def test_static_factory_stays_imprecise_at_every_k():
    # section 8.5: objects created by a static method get no context
    for k in (2, 3):
        assert warnings_at(FACTORY_APP, k), (
            f"k={k} cannot recover context lost through a static factory"
        )


def test_average_points_to_size_shrinks_with_k():
    from repro.corpus import app
    from repro.core import analyze_module

    spec = app("music")
    sizes = {}
    for k in (0, 2):
        module = spec.compile()
        result = analyze_module(module, spec.manifest_for(module),
                                AnalysisConfig(k=k))
        sizes[k] = result.pointsto.average_pts_size()
    assert sizes[2] <= sizes[0]
