"""Figure 5(b): effectiveness of the unsound filters over the warnings
surviving the sound filters.

Paper reference: mayHB 13%, MA 26%, UR 29%, TT 15% individually; combined
the unsound filters remove 70% of the sound survivors.  Shape asserted:
UR > MA > TT > mayHB and a combined removal near two thirds.
"""

import pytest

from repro.harness import render_figure5, run_figure5


@pytest.fixture(scope="module")
def figure5():
    return run_figure5()


def test_unsound_filters_rank_order(figure5):
    ur = figure5.unsound_fraction("UR")
    ma = figure5.unsound_fraction("MA")
    tt = figure5.unsound_fraction("TT")
    mayhb = figure5.mayhb_fraction
    assert ur > ma > tt >= mayhb, (ur, ma, tt, mayhb)


def test_unsound_combined_removes_majority_of_survivors(figure5):
    # paper: 70%
    assert 0.5 <= figure5.unsound_combined_fraction <= 0.9


def test_each_unsound_family_contributes(figure5):
    assert figure5.mayhb_combined > 0
    for name in ("MA", "UR", "TT"):
        assert figure5.unsound_individual[name] > 0, f"{name} never fires"
    # within mayHB, every constituent filter fires somewhere
    for name in ("RHB", "CHB", "PHB"):
        assert figure5.unsound_individual[name] > 0, f"{name} never fires"


def test_figure5b_report(figure5, capsys):
    with capsys.disabled():
        print()
        print(render_figure5(figure5).split("\n\n")[1])
        print("(paper: mayHB 13%, MA 26%, UR 29%, TT 15%, combined 70%)")
