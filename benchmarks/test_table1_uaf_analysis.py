"""Table 1: the full nAdroid UAF analysis over the 27-app corpus.

Regenerates the paper's main table -- per-app EC/PC/T sizes, potential
warnings, sound/unsound survivors, origin categories, and dynamically
validated true-harmful counts -- and asserts its structural claims.
"""

import pytest

from repro.corpus import all_apps
from repro.harness import (
    fp_totals,
    render_table1,
    run_table1,
    total_true_harmful,
)


@pytest.fixture(scope="module")
def table1_rows():
    return run_table1(validate=True, random_attempts=40)


def test_benchmark_table1_static_pipeline(benchmark, corpus_results):
    """Wall-clock of the static pipeline over the whole corpus."""
    from repro.harness.table1 import analyze_corpus_app
    from repro.corpus import train_apps

    def run_train_group():
        return [analyze_corpus_app(spec) for spec in train_apps()]

    results = benchmark(run_train_group)
    assert len(results) == 7


def test_table1_true_harmful_distribution(table1_rows):
    """Paper: 88 harmful UAFs concentrated in 6 apps (we scale the counts,
    not the distribution)."""
    apps_with_true = {r.name for r in table1_rows if r.true_harmful > 0}
    assert apps_with_true == {
        "connectbot", "mytracks1", "firefox", "aard", "mytracks2", "qksms",
    }
    assert total_true_harmful(table1_rows) >= 20


def test_table1_validated_matches_ground_truth(table1_rows):
    for row in table1_rows:
        confirmed = set(row.confirmed_fields)
        assert confirmed == set(row.app.true_uaf_fields) & confirmed
        # every expected harmful field is confirmed by some schedule
        surviving = {
            w.fieldref.field_name for w in row.result.remaining()
        }
        for field in row.app.true_uaf_fields:
            if field in surviving:
                assert field in confirmed, f"{row.name}.{field} unconfirmed"


def test_table1_fp_categories_all_realized(table1_rows):
    """Section 8.5: all four false-positive sources appear in the corpus."""
    totals = fp_totals(table1_rows)
    for category, count in totals.items():
        assert count > 0, f"FP category {category} not realized"
    # path insensitivity is the most common source (paper 8.5)
    assert totals["path-insensitivity"] == max(totals.values())


def test_table1_report(table1_rows, capsys):
    with capsys.disabled():
        print()
        print(render_table1(table1_rows))
        print(f"\nTotal true harmful UAFs: {total_true_harmful(table1_rows)} "
              f"(paper: 88 at ~10x corpus scale)")
        print(f"False-positive totals: {fp_totals(table1_rows)}")
