"""Ablations for the design choices DESIGN.md calls out.

* MHP at detection time (the paper turns it OFF, section 5)
* lockset-based suppression at detection time (OFF, section 5)
* thread-escape pre-filtering (Chord's, kept ON)
* single-looper atomicity assumption (section 8.1)
* per-filter leave-one-out over the sound filters
"""

import pytest

from repro.core import analyze_app, AnalysisConfig, analyze_module
from repro.corpus import app
from repro.filters.base import FilterOptions
from repro.race.detector import DetectorOptions

FIG1A = app("connectbot")


def run_connectbot(config=None):
    spec = FIG1A
    module = spec.compile()
    return analyze_module(module, spec.manifest_for(module), config)


def test_benchmark_default_configuration(benchmark):
    result = benchmark(run_connectbot)
    assert result.remaining()


def test_mhp_off_by_default_and_harmless_here():
    """Section 5: MHP adds little value for Android apps.  Turning our
    forest-structural MHP on must not lose any true warning (it only
    orders poster/postee pairs that PHB would prune anyway)."""
    base = run_connectbot()
    with_mhp = run_connectbot(
        AnalysisConfig(detector=DetectorOptions(use_mhp=True,
                                                engine="imperative"))
    )
    base_keys = {w.key for w in base.remaining()}
    mhp_keys = {w.key for w in with_mhp.remaining()}
    assert mhp_keys <= base_keys


def test_lockset_at_detection_time_would_hide_uafs():
    """Section 5: 'locks cannot prevent ordering violations'.  Respecting
    locks at detection time must never *add* warnings; and on a
    lock-protected UAF it wrongly removes a real one."""
    source = """
    class F { void use() { } }
    class A extends Activity {
      F f;
      void onResume() {
        f = new F();
        new Thread(new W(this)).start();
      }
      void onPause() {
        synchronized (this) { f.use(); }
      }
    }
    class W implements Runnable {
      A owner;
      W(A a) { owner = a; }
      public void run() {
        synchronized (owner) { owner.f = null; }
      }
    }
    """
    respecting = analyze_app(source, config=AnalysisConfig(
        detector=DetectorOptions(respect_locks=True, engine="imperative")
    ))
    ignoring = analyze_app(source)
    ignored_fields = {w.fieldref.field_name for w in ignoring.remaining()}
    respected_fields = {w.fieldref.field_name for w in respecting.remaining()}
    assert "f" in ignored_fields, "the lock does not order the free"
    assert "f" not in respected_fields, \
        "lockset suppression hides the ordering violation (why the paper drops it)"


def test_escape_analysis_only_prunes_nonescaping():
    spec = app("firefox")
    module = spec.compile()
    with_escape = analyze_module(module, spec.manifest_for(module))
    module2 = spec.compile()
    without = analyze_module(
        module2, spec.manifest_for(module2),
        AnalysisConfig(detector=DetectorOptions(use_escape_analysis=False)),
    )
    assert {w.key for w in with_escape.warnings} <= {
        w.key for w in without.warnings
    }
    assert {w.fieldref.field_name for w in with_escape.remaining()} == {
        w.fieldref.field_name for w in without.remaining()
    }, "escape filtering must not change the surviving report here"


def test_single_looper_assumption_downgrades_ig_ia():
    """Section 8.1: without the one-looper-per-component assumption the IG
    and IA filters lose their atomicity premise for callback pairs."""
    source = """
    class F { void use() { } }
    class A extends Activity {
      F f;
      View b1;
      View b2;
      void onCreate(Bundle b) {
        b1.setOnClickListener(new OnClickListener() {
          public void onClick(View v) {
            if (f != null) { f.use(); }
          }
        });
        b2.setOnClickListener(new OnClickListener() {
          public void onClick(View v) { f = null; }
        });
      }
    }
    """
    assume = analyze_app(source)
    no_assume = analyze_app(source, config=AnalysisConfig(
        filters=FilterOptions(assume_single_looper=False)
    ))
    assert not [w for w in assume.remaining()
                if w.fieldref.field_name == "f"]
    assert [w for w in no_assume.remaining()
            if w.fieldref.field_name == "f"], \
        "without atomicity the guard no longer protects the pair"


@pytest.mark.parametrize("dropped", ["MHB", "IG", "IA"])
def test_leave_one_sound_filter_out(dropped):
    """Each sound filter is load-bearing: dropping it strictly increases
    the after-sound survivor count somewhere in the train group."""
    from repro.filters.base import FilterContext
    from repro.filters.pipeline import FilterPipeline
    from repro.filters.sound import SOUND_FILTERS
    from repro.filters.unsound import UNSOUND_FILTERS
    from repro.race.detector import detect_uaf_warnings

    spec = app("connectbot" if dropped != "IA" else "soundrecorder")
    module = spec.compile()
    result = analyze_module(module, spec.manifest_for(module))

    kept = [f for f in SOUND_FILTERS if f.name != dropped]
    warnings = detect_uaf_warnings(result.program, result.pointsto,
                                   lockset=result.lockset)
    ctx = FilterContext(result.program, result.pointsto, result.lockset)
    report = FilterPipeline(ctx, kept, UNSOUND_FILTERS).apply(
        warnings, with_individual_stats=False
    )
    assert report.after_sound > result.report.after_sound, (
        f"dropping {dropped} must leave more sound survivors"
    )
