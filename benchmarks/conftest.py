"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one paper table/figure (or an ablation) and
asserts the *shape* of the paper's result -- who wins, what dominates,
where the zeros are -- rather than absolute numbers, per DESIGN.md.
"""

import pytest


@pytest.fixture(scope="session")
def corpus_results():
    """Analyze all 27 apps once per session (no dynamic validation)."""
    from repro.corpus import all_apps
    from repro.harness.table1 import analyze_corpus_app

    return {spec.name: (spec, analyze_corpus_app(spec)) for spec in all_apps()}
