"""Section 8.8: analysis execution-time breakdown.

Paper reference: modeling 1.19%, filtering 3.08%, static detection
95.73%.  Asserted shape: detection (the Chord-style points-to + Datalog
race solving) dominates; modeling and filtering are minor stages.
"""

import pytest

from repro.harness import render_timing, run_timing


@pytest.fixture(scope="module")
def timing():
    return run_timing()


def test_benchmark_pipeline_staging(benchmark):
    from repro.corpus import app
    from repro.harness.table1 import analyze_corpus_app

    spec = app("firefox")
    result = benchmark(analyze_corpus_app, spec)
    assert result.timings["total"] > 0


def test_detection_dominates(timing):
    fractions = timing.fractions()
    assert timing.dominant_stage == "detection"
    assert fractions["detection"] > 0.5


def test_modeling_and_filtering_are_minor(timing):
    fractions = timing.fractions()
    assert fractions["modeling"] < fractions["detection"]
    assert fractions["filtering"] < fractions["detection"]


def test_every_app_reports_all_stages(timing):
    for name, stages in timing.per_app.items():
        for stage in ("modeling", "detection", "filtering"):
            assert stages.get(stage, 0) >= 0, (name, stage)


def test_sec88_report(timing, capsys):
    with capsys.disabled():
        print()
        print(render_timing(timing))
