"""Figure 5(a): effectiveness of the sound filters over the test group.

Paper reference: MHB prunes 21%, IG 66%, IA 13% of potential warnings
when applied individually; combined they remove 88%.  Shape asserted:
IG dominates, MHB second, IA smallest; combined removes a large majority.
"""

import pytest

from repro.harness import render_figure5, run_figure5


@pytest.fixture(scope="module")
def figure5():
    return run_figure5()


def test_benchmark_figure5_aggregation(benchmark):
    data = benchmark(run_figure5)
    assert data.potential > 0


def test_sound_filters_rank_order(figure5):
    ig = figure5.sound_fraction("IG")
    mhb = figure5.sound_fraction("MHB")
    ia = figure5.sound_fraction("IA")
    assert ig > mhb > ia, (ig, mhb, ia)


def test_sound_filters_combined_removes_majority(figure5):
    # paper: 88%; substrate-scaled corpus: a clear majority
    assert figure5.sound_combined_fraction >= 0.55


def test_each_sound_filter_contributes(figure5):
    for name in ("MHB", "IG", "IA"):
        assert figure5.sound_individual[name] > 0, f"{name} never fires"


def test_figure5a_report(figure5, capsys):
    with capsys.disabled():
        print()
        print(render_figure5(figure5).split("\n\n")[0])
        print("(paper: MHB 21%, IG 66%, IA 13%, combined 88%)")
