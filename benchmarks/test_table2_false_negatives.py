"""Table 2: false-negative analysis with 28 injected UAF violations.

Paper reference: 28 ground-truth artificial UAFs over 8 apps; nAdroid
misses 2 (unanalyzed framework path) and unsoundly prunes 3 (the CHB
may-finish cases) -- asserted here exactly, since the construction is
reproduced one-to-one.
"""

import pytest

from repro.corpus.injector import all_injections, INJECTED_APPS
from repro.harness import render_table2, run_table2, summarize_table2


@pytest.fixture(scope="module")
def outcomes():
    return run_table2()


def test_benchmark_table2_pipeline(benchmark):
    summary = summarize_table2(benchmark(run_table2))
    assert summary["total"] == 28


def test_injection_census():
    assert len(all_injections()) == 28
    assert len(INJECTED_APPS) == 8


def test_table2_matches_paper_exactly(outcomes):
    summary = summarize_table2(outcomes)
    assert summary["total"] == 28
    assert summary["missed"] == 2          # unanalyzed ContentObserver path
    assert summary["pruned_unsound"] == 3  # CHB may-finish cases
    assert summary["detected"] == 23
    assert summary["matches_paper"] == 28


def test_missed_cases_are_the_framework_path(outcomes):
    missed = [o for o in outcomes if o.classification == "missed-by-detection"]
    assert {o.injection.app_name for o in missed} == {"mms"}
    assert all("onChange" in o.injection.free_method_hint for o in missed)


def test_pruned_cases_are_chb(outcomes):
    pruned = [
        o for o in outcomes
        if o.classification == "pruned-by-unsound-filter"
    ]
    assert {o.injection.app_name for o in pruned} == {"browser", "sgtpuzzles"}


def test_table2_report(outcomes, capsys):
    with capsys.disabled():
        print()
        print(render_table2(outcomes))
