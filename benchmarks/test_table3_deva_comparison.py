"""Table 3: comparison to the DEvA baseline over the train group.

Paper reference: of DEvA's 13 harmful warnings, nAdroid detects 12 (the
13th is the unmodeled Browser Fragment) and filters 11 as false; DEvA
misses nAdroid's cross-class/cross-thread true UAFs entirely.  Asserted
shape: nAdroid detects all but the Fragment case, filters the majority
(every onDestroy-style pair via MHB), and reports true UAFs DEvA cannot
see.
"""

import pytest

from repro.harness import (
    nadroid_only_true_uafs,
    render_table3,
    run_table3,
    summarize_table3,
)


@pytest.fixture(scope="module")
def rows():
    return run_table3()


def test_benchmark_table3(benchmark):
    result = benchmark(run_table3)
    assert result


def test_nadroid_detects_all_but_fragment(rows):
    summary = summarize_table3(rows)
    assert summary["not_detected"] == 1  # the Browser Fragment case
    missing = [r for r in rows if not r.nadroid_detected]
    assert missing[0].app == "browser"
    assert "AccessibilityPreferencesFragment" in missing[0].deva_warning.use_method


def test_nadroid_filters_majority_of_deva_harmful(rows):
    summary = summarize_table3(rows)
    assert summary["nadroid_filtered"] > summary["agreed_harmful"]


def test_ondestroy_rows_filtered_by_mhb(rows):
    ondestroy = [
        r for r in rows if r.deva_warning.free_method.endswith("onDestroy")
        and r.nadroid_detected
    ]
    assert ondestroy, "the Table 3 onDestroy pattern must appear"
    for row in ondestroy:
        assert row.nadroid_filtered, row.deva_warning
        assert "MHB" in row.filtered_by


def test_deva_misses_nadroid_true_uafs(rows):
    missed = nadroid_only_true_uafs()
    # paper section 8.7: DEvA misses the Figure 1 bugs (cross-class /
    # cross-thread); at minimum ConnectBot and FireFox
    assert {"connectbot", "firefox"} <= set(missed)
    assert sum(missed.values()) >= 10


def test_table3_report(rows, capsys):
    with capsys.disabled():
        print()
        print(render_table3(rows))
